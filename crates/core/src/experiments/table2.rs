//! Table II: accuracy and #MZI of the four models, original ONN vs RVNN
//! reference vs the proposed OplixNet.
//!
//! Area columns are computed at the paper's full scale (they match the
//! paper digit-for-digit, see `crate::spec` tests); accuracy columns are
//! measured at training scale on the synthetic datasets, so the *gaps*
//! (orig ≳ prop, prop ≈ rvnn ± small) are the reproduction target.

use crate::experiments::{pct, train_on_acc, Scale};
use crate::spec::{
    fcnn_orig, fcnn_prop, lenet5_orig, lenet5_prop, resnet_orig, resnet_prop, ModelSpec,
};
use crate::stage::{AssignStage, AssignedData, DataLayout, DatasetPair, ModelFactory, Stage};
use crate::zoo::{
    build_fcnn, build_lenet, build_resnet, FcnnConfig, LenetConfig, ModelVariant, ResnetConfig,
};
use oplix_datasets::assign::AssignmentKind;
use oplix_datasets::synth::{colors, digits, RealDataset, SynthConfig};
use oplix_photonics::count::reduction_ratio;
use oplix_photonics::decoder::DecoderKind;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt;

/// The four models of Table II.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Table2Model {
    /// FCNN-784-100-10 on (synthetic) MNIST.
    Fcnn,
    /// LeNet-5 on (synthetic) CIFAR-10.
    Lenet5,
    /// ResNet-20 on (synthetic) CIFAR-10.
    Resnet20,
    /// ResNet-32 on (synthetic) CIFAR-100.
    Resnet32,
}

impl Table2Model {
    /// All four, in table order.
    pub fn all() -> [Table2Model; 4] {
        [
            Table2Model::Fcnn,
            Table2Model::Lenet5,
            Table2Model::Resnet20,
            Table2Model::Resnet32,
        ]
    }

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            Table2Model::Fcnn => "FCNN",
            Table2Model::Lenet5 => "LeNet-5",
            Table2Model::Resnet20 => "ResNet-20",
            Table2Model::Resnet32 => "ResNet-32",
        }
    }

    /// Paper-scale specs `(orig, prop)`.
    pub fn specs(&self) -> (ModelSpec, ModelSpec) {
        match self {
            Table2Model::Fcnn => (fcnn_orig(), fcnn_prop()),
            Table2Model::Lenet5 => (lenet5_orig(), lenet5_prop()),
            Table2Model::Resnet20 => (resnet_orig(20, 10), resnet_prop(20, 10)),
            Table2Model::Resnet32 => (resnet_orig(32, 100), resnet_prop(32, 100)),
        }
    }

    /// The assignment OplixNet uses for this model (§IV: SI for the FCNN,
    /// CL for the CNNs).
    pub fn assignment(&self) -> AssignmentKind {
        match self {
            Table2Model::Fcnn => AssignmentKind::SpatialInterlace,
            _ => AssignmentKind::ChannelLossless,
        }
    }

    /// Number of classes at training scale (ResNet-32 stands in for
    /// CIFAR-100 with a larger class count).
    pub fn classes(&self) -> usize {
        match self {
            Table2Model::Resnet32 => 20,
            _ => 10,
        }
    }
}

/// One row of Table II.
#[derive(Clone, Debug)]
pub struct Table2Row {
    /// Model name.
    pub model: &'static str,
    /// Conventional ONN accuracy ("Orig.").
    pub acc_orig: f64,
    /// Software real-valued reference accuracy ("RVNN").
    pub acc_rvnn: f64,
    /// OplixNet accuracy ("Prop.").
    pub acc_prop: f64,
    /// Original #MZI (paper scale).
    pub mzi_orig: u64,
    /// Proposed #MZI (paper scale).
    pub mzi_prop: u64,
}

impl Table2Row {
    /// The "#MZI Red." column.
    pub fn reduction(&self) -> f64 {
        reduction_ratio(self.mzi_orig, self.mzi_prop)
    }
}

/// The rendered Table II.
#[derive(Clone, Debug)]
pub struct Table2Report {
    /// One row per model.
    pub rows: Vec<Table2Row>,
}

impl fmt::Display for Table2Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Table II: experimental results of proposed work")?;
        writeln!(
            f,
            "{:<10} {:>9} {:>9} {:>9} {:>12} {:>12} {:>10}",
            "Model", "Orig.", "RVNN", "Prop.", "#MZI Orig", "#MZI Prop", "Red."
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:<10} {:>9} {:>9} {:>9} {:>11.1}e4 {:>11.1}e4 {:>10}",
                r.model,
                pct(r.acc_orig),
                pct(r.acc_rvnn),
                pct(r.acc_prop),
                r.mzi_orig as f64 / 1e4,
                r.mzi_prop as f64 / 1e4,
                pct(r.reduction()),
            )?;
        }
        Ok(())
    }
}

/// Builds the three assigned views and three networks for one model and
/// trains them through the `Assign → Train` stages, producing one table
/// row.
fn run_model(model: Table2Model, scale: &Scale) -> Table2Row {
    let classes = model.classes();
    let hw = if model == Table2Model::Fcnn {
        scale.image_hw
    } else {
        scale.cnn_hw()
    };
    let mk_cfg = |samples, seed| SynthConfig {
        height: hw,
        width: hw,
        num_classes: classes,
        samples,
        seed,
        ..Default::default()
    };
    let (train_raw, test_raw): (RealDataset, RealDataset) = match model {
        Table2Model::Fcnn => (
            digits(&mk_cfg(scale.train_samples, 11)),
            digits(&mk_cfg(scale.test_samples, 12)),
        ),
        _ => (
            colors(&mk_cfg(scale.train_samples, 21)),
            colors(&mk_cfg(scale.test_samples, 22)),
        ),
    };
    let pair = DatasetPair::new(train_raw, test_raw);

    // The FCNN consumes flattened vectors, the CNNs keep images.
    let layout = if model == Table2Model::Fcnn {
        DataLayout::Flat
    } else {
        DataLayout::Image
    };
    // Each assignment runs once; the conventional view is shared by the
    // orig and rvnn arms.
    let view = |assignment| {
        AssignStage {
            assignment,
            layout,
            teacher_view: false,
        }
        .run(pair.clone())
        .unwrap_or_else(|e| panic!("experiment stage failed: {e}"))
    };
    let conv_data = view(AssignmentKind::Conventional);
    let split_data = view(model.assignment());

    // Factories seed their own init RNG so every variant comparison shares
    // a fixed init regardless of the training schedule.
    let factory = move |variant: ModelVariant, init_seed: u64| -> Box<dyn ModelFactory> {
        Box::new(move |data: &AssignedData, _rng: &mut StdRng| {
            let mut rng = StdRng::seed_from_u64(init_seed);
            Ok(match model {
                Table2Model::Fcnn => {
                    let hidden = match variant {
                        ModelVariant::Split(_) => 32,
                        _ => 64,
                    };
                    build_fcnn(
                        &FcnnConfig {
                            input: data.assigned_features(),
                            hidden,
                            classes,
                        },
                        variant,
                        &mut rng,
                    )
                }
                Table2Model::Lenet5 => {
                    let full = LenetConfig::training_scale(3, data.raw_shape.1, classes);
                    let cfg = match variant {
                        ModelVariant::Split(_) => full.halved(),
                        _ => full,
                    };
                    build_lenet(&cfg, variant, &mut rng)
                }
                Table2Model::Resnet20 | Table2Model::Resnet32 => {
                    let depth = if model == Table2Model::Resnet20 {
                        20
                    } else {
                        32
                    };
                    let full = ResnetConfig::training_scale(depth, 3, data.raw_shape.1, classes);
                    let cfg = match variant {
                        ModelVariant::Split(_) => full.halved(),
                        _ => full,
                    };
                    build_resnet(&cfg, variant, &mut rng)
                }
            })
        })
    };

    // Train the three variants in parallel, with identical
    // hyper-parameters within the model (as the paper prescribes).
    let setup = scale.setup_for(match model {
        Table2Model::Fcnn => crate::experiments::Workload::Fcnn,
        Table2Model::Lenet5 => crate::experiments::Workload::Lenet,
        _ => crate::experiments::Workload::Resnet,
    });
    // The clone of the shared conventional view is a reference bump (the
    // dataset tensors are Arc-backed), not a copy.
    let (acc_orig, acc_rvnn, acc_prop) = {
        let (factory, setup) = (&factory, &setup);
        let conv_for_orig = conv_data.clone();
        let accs = crate::pool::run_scoped(vec![
            Box::new(move || {
                let f = factory(ModelVariant::ConventionalOnn, 100);
                train_on_acc(conv_for_orig, f, None, setup, 200)
            }) as Box<dyn FnOnce() -> f64 + Send + '_>,
            Box::new(move || {
                let f = factory(ModelVariant::Rvnn, 101);
                train_on_acc(conv_data, f, None, setup, 201)
            }),
            Box::new(move || {
                let f = factory(ModelVariant::Split(DecoderKind::Merge), 102);
                train_on_acc(split_data, f, None, setup, 202)
            }),
        ]);
        (accs[0], accs[1], accs[2])
    };

    let (orig_spec, prop_spec) = model.specs();
    Table2Row {
        model: model.name(),
        acc_orig,
        acc_rvnn,
        acc_prop,
        mzi_orig: orig_spec.mzis(),
        mzi_prop: prop_spec.mzis(),
    }
}

/// Runs the full Table II experiment.
pub fn run(scale: &Scale) -> Table2Report {
    let rows = Table2Model::all()
        .into_iter()
        .map(|m| run_model(m, scale))
        .collect();
    Table2Report { rows }
}

/// Runs a subset of the models (used by quick tests and partial benches).
pub fn run_models(models: &[Table2Model], scale: &Scale) -> Table2Report {
    Table2Report {
        rows: models.iter().map(|&m| run_model(m, scale)).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_fcnn_row_is_sane() {
        let report = run_models(&[Table2Model::Fcnn], &Scale::quick());
        let row = &report.rows[0];
        // Area columns are exact regardless of scale.
        assert_eq!(row.mzi_orig, 316_991);
        assert_eq!(row.mzi_prop, 79_191);
        assert!((row.reduction() - 0.7503).abs() < 0.002);
        // Accuracies are probabilities and the models must beat chance
        // (10 classes) even at quick scale.
        for acc in [row.acc_orig, row.acc_rvnn, row.acc_prop] {
            assert!((0.0..=1.0).contains(&acc));
            assert!(acc > 0.2, "model failed to learn: {acc}");
        }
    }

    #[test]
    fn display_renders_all_columns() {
        let report = Table2Report {
            rows: vec![Table2Row {
                model: "FCNN",
                acc_orig: 0.98,
                acc_rvnn: 0.985,
                acc_prop: 0.975,
                mzi_orig: 316_991,
                mzi_prop: 79_191,
            }],
        };
        let s = report.to_string();
        assert!(s.contains("FCNN"));
        assert!(s.contains("31.7e4"));
        assert!(s.contains("75.0"));
    }
}
