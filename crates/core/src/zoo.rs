//! Trainable model zoo: FCNN, LeNet-5 and CIFAR-style ResNets in each of
//! the paper's network families.
//!
//! The zoo builds *training-scale* networks (reduced width/resolution so
//! the full experiment grid trains on CPU); the paper-scale area arithmetic
//! lives in [`crate::spec`]. A model is selected by a [`ModelVariant`]:
//!
//! * [`ModelVariant::Rvnn`] — real weights, real head (the software
//!   reference column of Table II);
//! * [`ModelVariant::ConventionalOnn`] — complex weights, amplitude-only
//!   input (imaginary part zero), photodiode head: the original ONN of
//!   Shen et al. \[10\] ("Orig.");
//! * [`ModelVariant::Split`] — complex weights on complex-assigned inputs
//!   with one of the four output decoders ("Prop." with
//!   [`DecoderKind::Merge`]).

use oplix_nn::head::{Head, LinearDecoderHead, MergeHead, ModulusHead, ReHead, UnitaryDecoderHead};
use oplix_nn::layers::{CAvgPool2d, CConv2d, CDense, CFlatten, CRelu, CResidualBlock, CSequential};
use oplix_nn::network::Network;
use oplix_photonics::decoder::DecoderKind;
use rand::Rng;

/// Which of the paper's network families to instantiate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ModelVariant {
    /// Real-valued reference network.
    Rvnn,
    /// Complex network, amplitude-only inputs, photodiode detection — the
    /// conventional ONN.
    ConventionalOnn,
    /// Split-complex network on assigned inputs with the given decoder.
    Split(DecoderKind),
}

impl ModelVariant {
    /// Whether layers should be constructed real-only.
    pub fn real_only(&self) -> bool {
        matches!(self, ModelVariant::Rvnn)
    }

    /// The optical detection scheme a deployed network of this family
    /// reads out through — what [`crate::stage::DeployStage`] and the
    /// engine use, so decoder/detection selection lives behind the stage
    /// API instead of in every driver.
    pub fn detection(&self) -> crate::deploy::DeployedDetection {
        use crate::deploy::DeployedDetection;
        match self {
            // RVNN logits are the (real) outputs themselves.
            ModelVariant::Rvnn => DeployedDetection::CoherentReal,
            // The conventional ONN reads photodiode amplitudes.
            ModelVariant::ConventionalOnn => DeployedDetection::Intensity,
            ModelVariant::Split(decoder) => decoder.detection(),
        }
    }

    /// Output width of the last weight layer for `classes` classes (the
    /// merge decoder doubles it) and the matching head.
    pub fn head<R: Rng>(&self, classes: usize, rng: &mut R) -> (usize, Box<dyn Head>) {
        match self {
            ModelVariant::Rvnn => (classes, Box::new(ReHead::new())),
            ModelVariant::ConventionalOnn => (classes, Box::new(ModulusHead::new())),
            ModelVariant::Split(DecoderKind::Merge) => (2 * classes, Box::new(MergeHead::new())),
            ModelVariant::Split(DecoderKind::Linear) => {
                (classes, Box::new(LinearDecoderHead::new(classes, rng)))
            }
            ModelVariant::Split(DecoderKind::Unitary) => {
                (classes, Box::new(UnitaryDecoderHead::new(classes, rng)))
            }
            ModelVariant::Split(DecoderKind::Coherent) => (classes, Box::new(ReHead::new())),
        }
    }
}

fn dense<R: Rng>(n_in: usize, n_out: usize, real_only: bool, rng: &mut R) -> CDense {
    if real_only {
        CDense::new_real(n_in, n_out, rng)
    } else {
        CDense::new(n_in, n_out, rng)
    }
}

fn conv<R: Rng>(
    in_ch: usize,
    out_ch: usize,
    k: usize,
    stride: usize,
    pad: usize,
    real_only: bool,
    rng: &mut R,
) -> CConv2d {
    if real_only {
        CConv2d::new_real(in_ch, out_ch, k, stride, pad, rng)
    } else {
        CConv2d::new(in_ch, out_ch, k, stride, pad, rng)
    }
}

// ---------------------------------------------------------------------------
// FCNN
// ---------------------------------------------------------------------------

/// Shape of a training-scale FCNN. `input` is the (possibly already
/// halved) flattened feature count of the dataset view.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FcnnConfig {
    /// Flattened input width.
    pub input: usize,
    /// Hidden layer width.
    pub hidden: usize,
    /// Number of classes.
    pub classes: usize,
}

/// Builds the two-layer FCNN of §IV (input–hidden–classes with ReLU).
pub fn build_fcnn<R: Rng>(cfg: &FcnnConfig, variant: ModelVariant, rng: &mut R) -> Network {
    let real = variant.real_only();
    let (out_w, head) = variant.head(cfg.classes, rng);
    let body = CSequential::new()
        .push(dense(cfg.input, cfg.hidden, real, rng))
        .push(CRelu::new())
        .push(dense(cfg.hidden, out_w, real, rng));
    Network::new(body, head)
}

// ---------------------------------------------------------------------------
// LeNet-5
// ---------------------------------------------------------------------------

/// Shape of a training-scale LeNet-5. Inputs may be rectangular (the
/// spatial-interlace assignment halves the height); both spatial
/// dimensions must be divisible by 4.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LenetConfig {
    /// Input channels of the dataset view.
    pub in_ch: usize,
    /// Input height.
    pub input_h: usize,
    /// Input width.
    pub input_w: usize,
    /// First conv channels.
    pub conv1: usize,
    /// Second conv channels.
    pub conv2: usize,
    /// First dense width.
    pub fc1: usize,
    /// Second dense width.
    pub fc2: usize,
    /// Number of classes.
    pub classes: usize,
}

impl LenetConfig {
    /// Training-scale default on `hw×hw` inputs with `in_ch` channels.
    pub fn training_scale(in_ch: usize, hw: usize, classes: usize) -> Self {
        LenetConfig {
            in_ch,
            input_h: hw,
            input_w: hw,
            conv1: 6,
            conv2: 12,
            fc1: 48,
            fc2: 32,
            classes,
        }
    }

    /// The channel-halved (split) version of this config.
    pub fn halved(&self) -> Self {
        LenetConfig {
            in_ch: self.in_ch.div_ceil(2),
            conv1: self.conv1 / 2,
            conv2: self.conv2 / 2,
            fc1: self.fc1 / 2,
            fc2: self.fc2 / 2,
            ..*self
        }
    }

    /// Same config on a rectangular input (spatial assignment views).
    pub fn with_input(&self, h: usize, w: usize) -> Self {
        LenetConfig {
            input_h: h,
            input_w: w,
            ..*self
        }
    }

    /// Flattened width after the two conv(same)/pool stages: both convs
    /// keep the spatial size (5×5, pad 2), each pool halves it.
    pub fn flat_width(&self) -> usize {
        self.conv2 * (self.input_h / 4) * (self.input_w / 4)
    }
}

/// Builds a LeNet-5: conv5(pad2)-pool2-conv5(pad2)-pool2-fc-fc-fc.
pub fn build_lenet<R: Rng>(cfg: &LenetConfig, variant: ModelVariant, rng: &mut R) -> Network {
    assert!(
        cfg.input_h.is_multiple_of(4) && cfg.input_w.is_multiple_of(4),
        "LeNet input dimensions must be divisible by 4"
    );
    let real = variant.real_only();
    let (out_w, head) = variant.head(cfg.classes, rng);
    let body = CSequential::new()
        .push(conv(cfg.in_ch, cfg.conv1, 5, 1, 2, real, rng))
        .push(CRelu::new())
        .push(CAvgPool2d::new(2))
        .push(conv(cfg.conv1, cfg.conv2, 5, 1, 2, real, rng))
        .push(CRelu::new())
        .push(CAvgPool2d::new(2))
        .push(CFlatten::new())
        .push(dense(cfg.flat_width(), cfg.fc1, real, rng))
        .push(CRelu::new())
        .push(dense(cfg.fc1, cfg.fc2, real, rng))
        .push(CRelu::new())
        .push(dense(cfg.fc2, out_w, real, rng));
    Network::new(body, head)
}

// ---------------------------------------------------------------------------
// ResNet
// ---------------------------------------------------------------------------

/// Shape of a training-scale CIFAR-style ResNet. Inputs may be
/// rectangular; the width must be a multiple of the height so global
/// pooling and the classifier stay consistent.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ResnetConfig {
    /// Input channels of the dataset view.
    pub in_ch: usize,
    /// Input height (halves twice through the stages).
    pub input_h: usize,
    /// Input width.
    pub input_w: usize,
    /// Residual blocks per stage (depth = 6·blocks + 2).
    pub blocks: usize,
    /// Channel widths of the three stages.
    pub widths: [usize; 3],
    /// Number of classes.
    pub classes: usize,
}

impl ResnetConfig {
    /// Training-scale ResNet of the given depth (must be 6n+2).
    ///
    /// # Panics
    ///
    /// Panics if `depth` is not of the form 6n+2.
    pub fn training_scale(depth: usize, in_ch: usize, hw: usize, classes: usize) -> Self {
        assert!(
            depth >= 8 && (depth - 2).is_multiple_of(6),
            "depth must be 6n+2"
        );
        ResnetConfig {
            in_ch,
            input_h: hw,
            input_w: hw,
            blocks: (depth - 2) / 6,
            widths: [8, 16, 32],
            classes,
        }
    }

    /// The channel-halved (split) version of this config.
    pub fn halved(&self) -> Self {
        ResnetConfig {
            in_ch: self.in_ch.div_ceil(2),
            widths: [self.widths[0] / 2, self.widths[1] / 2, self.widths[2] / 2],
            ..*self
        }
    }

    /// Same config on a rectangular input (spatial assignment views).
    pub fn with_input(&self, h: usize, w: usize) -> Self {
        ResnetConfig {
            input_h: h,
            input_w: w,
            ..*self
        }
    }

    /// Network depth `6·blocks + 2`.
    pub fn depth(&self) -> usize {
        6 * self.blocks + 2
    }

    /// Flattened classifier input after global pooling: square inputs pool
    /// to one pixel; a `w = r·h` input leaves `r` pooled columns.
    pub fn classifier_width(&self) -> usize {
        self.widths[2] * (self.input_w / self.input_h)
    }
}

/// Builds a CIFAR-style ResNet: conv3 stem, three stages of residual
/// blocks (stride 2 entering stages 2 and 3), global average pooling, and
/// a dense classifier.
pub fn build_resnet<R: Rng>(cfg: &ResnetConfig, variant: ModelVariant, rng: &mut R) -> Network {
    assert!(
        cfg.input_w.is_multiple_of(cfg.input_h),
        "ResNet input width must be a multiple of its height"
    );
    assert!(
        cfg.input_h.is_multiple_of(4),
        "ResNet input height must be divisible by 4"
    );
    let real = variant.real_only();
    let (out_w, head) = variant.head(cfg.classes, rng);
    let mut body = CSequential::new()
        .push(conv(cfg.in_ch, cfg.widths[0], 3, 1, 1, real, rng))
        .push(CRelu::new());
    let mut in_ch = cfg.widths[0];
    for (stage, &w) in cfg.widths.iter().enumerate() {
        for b in 0..cfg.blocks {
            let stride = if stage > 0 && b == 0 { 2 } else { 1 };
            body.add(Box::new(CResidualBlock::new(in_ch, w, stride, real, rng)));
            in_ch = w;
        }
    }
    // Two stride-2 stages shrink (h, w) to (h/4, w/4); pooling with the
    // final height leaves one row and w/h pooled columns.
    body.add(Box::new(CAvgPool2d::new(cfg.input_h / 4)));
    body.add(Box::new(CFlatten::new()));
    body.add(Box::new(dense(cfg.classifier_width(), out_w, real, rng)));
    Network::new(body, head)
}

#[cfg(test)]
mod tests {
    use super::*;
    use oplix_nn::ctensor::CTensor;
    use oplix_nn::tensor::Tensor;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn fcnn_variants_forward() {
        let mut rng = StdRng::seed_from_u64(1);
        let cfg = FcnnConfig {
            input: 32,
            hidden: 16,
            classes: 4,
        };
        for variant in [
            ModelVariant::Rvnn,
            ModelVariant::ConventionalOnn,
            ModelVariant::Split(DecoderKind::Merge),
            ModelVariant::Split(DecoderKind::Linear),
            ModelVariant::Split(DecoderKind::Unitary),
            ModelVariant::Split(DecoderKind::Coherent),
        ] {
            let mut net = build_fcnn(&cfg, variant, &mut rng);
            let x = CTensor::from_re(Tensor::random_uniform(&[2, 32], 1.0, &mut rng));
            let logits = net.forward(&x, false);
            assert_eq!(logits.shape(), &[2, 4], "{variant:?}");
        }
    }

    #[test]
    fn lenet_forward_shapes() {
        let mut rng = StdRng::seed_from_u64(2);
        let cfg = LenetConfig::training_scale(3, 16, 10);
        assert_eq!(cfg.flat_width(), 12 * 4 * 4);
        let mut net = build_lenet(&cfg, ModelVariant::Split(DecoderKind::Merge), &mut rng);
        let x = CTensor::zeros(&[2, 3, 16, 16]);
        let logits = net.forward(&x, false);
        assert_eq!(logits.shape(), &[2, 10]);
    }

    #[test]
    fn lenet_halved_keeps_geometry() {
        let cfg = LenetConfig::training_scale(3, 16, 10);
        let half = cfg.halved();
        assert_eq!(half.in_ch, 2);
        assert_eq!(half.conv1, 3);
        assert_eq!(half.input_h, cfg.input_h);
        assert_eq!(half.flat_width(), 6 * 4 * 4);
    }

    #[test]
    fn resnet_forward_shapes() {
        let mut rng = StdRng::seed_from_u64(3);
        let cfg = ResnetConfig::training_scale(8, 3, 16, 10);
        assert_eq!(cfg.depth(), 8);
        let mut net = build_resnet(&cfg, ModelVariant::ConventionalOnn, &mut rng);
        let x = CTensor::zeros(&[2, 3, 16, 16]);
        let logits = net.forward(&x, false);
        assert_eq!(logits.shape(), &[2, 10]);
    }

    #[test]
    fn resnet_halved_halves_widths() {
        let cfg = ResnetConfig::training_scale(8, 3, 16, 10);
        let half = cfg.halved();
        assert_eq!(half.in_ch, 2);
        assert_eq!(half.widths, [4, 8, 16]);
    }

    #[test]
    fn rectangular_inputs_work() {
        let mut rng = StdRng::seed_from_u64(9);
        let lenet_cfg = LenetConfig::training_scale(3, 16, 10).with_input(8, 16);
        let mut lenet = build_lenet(
            &lenet_cfg,
            ModelVariant::Split(DecoderKind::Merge),
            &mut rng,
        );
        let x = CTensor::zeros(&[2, 3, 8, 16]);
        assert_eq!(lenet.forward(&x, false).shape(), &[2, 10]);

        let res_cfg = ResnetConfig::training_scale(8, 3, 16, 10).with_input(8, 16);
        assert_eq!(res_cfg.classifier_width(), 2 * res_cfg.widths[2]);
        let mut resnet = build_resnet(&res_cfg, ModelVariant::Split(DecoderKind::Merge), &mut rng);
        assert_eq!(resnet.forward(&x, false).shape(), &[2, 10]);
    }

    #[test]
    fn rvnn_has_half_the_params_of_cvnn() {
        let mut rng = StdRng::seed_from_u64(4);
        let cfg = FcnnConfig {
            input: 16,
            hidden: 8,
            classes: 2,
        };
        let mut r = build_fcnn(&cfg, ModelVariant::Rvnn, &mut rng);
        let mut c = build_fcnn(&cfg, ModelVariant::ConventionalOnn, &mut rng);
        assert_eq!(c.num_params(), 2 * r.num_params());
    }

    #[test]
    fn split_merge_head_doubles_last_layer() {
        let mut rng = StdRng::seed_from_u64(5);
        let cfg = FcnnConfig {
            input: 16,
            hidden: 8,
            classes: 3,
        };
        let mut merge = build_fcnn(&cfg, ModelVariant::Split(DecoderKind::Merge), &mut rng);
        let mut coh = build_fcnn(&cfg, ModelVariant::Split(DecoderKind::Coherent), &mut rng);
        // The doubled last layer adds 8*3*2 complex weights + 3*2 biases.
        assert!(merge.num_params() > coh.num_params());
    }
}
