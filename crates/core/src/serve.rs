//! Concurrent serving front end: request queue → micro-batcher → sharded
//! engine.
//!
//! The compiled kernel layer made per-window inference cheap, but a bare
//! [`InferenceEngine`] still serves one blocking `classify` call at a
//! time — one caller owns the whole engine. This module decouples
//! *request submission* from *batch formation* so many concurrent clients
//! share one engine at full batch occupancy:
//!
//! ```text
//!  Client ─submit()─▶ ┌──────────────┐    ┌───────────────┐
//!  Client ─submit()─▶ │ bounded MPSC │ ─▶ │ micro-batcher │ ─▶ sharded
//!  Client ─submit()─▶ │    queue     │    │ (max_batch /  │    engine
//!        ⋮            └──────────────┘    │   max_wait)   │    workers
//!   Ticket::wait() ◀── per-request reply ─└───────────────┘
//! ```
//!
//! * A [`Server`] owns a deployed model (its [`InferenceEngine`]) and a
//!   **bounded** request queue; the queue bound is the backpressure
//!   contract — [`Client::submit`] blocks while the queue is full and
//!   [`Client::try_submit`] returns [`Error::QueueFull`] instead.
//! * A dedicated **batcher thread** drains the queue into micro-batches,
//!   flushing on whichever comes first: the batch reaching
//!   [`ServerBuilder::max_batch`] samples, or the oldest queued request
//!   waiting [`ServerBuilder::max_wait`]. Each flush stages the samples
//!   into one contiguous buffer and drives the engine's borrowed-batch
//!   entry point ([`InferenceEngine::classify_rows`]' generic form) — no
//!   per-request tensor copies. The batcher holds a
//!   [`crate::pool::ServiceSlot`], so its thread draws from the shared
//!   `--jobs` budget like every other worker in the process.
//! * Clients hold a cheap, cloneable [`Client`] handle. `submit` returns
//!   a [`Ticket`] immediately; [`Ticket::wait`] / [`Ticket::try_wait`]
//!   resolve to the [`Prediction`] once the batch containing the sample
//!   has been served. Results are **bitwise identical** to calling
//!   [`InferenceEngine::classify`] directly, regardless of how requests
//!   were coalesced into batches — every sample runs the exact same
//!   compiled windowed kernel.
//! * [`Server::shutdown`] **drains**: every request admitted to the queue
//!   before shutdown is served and its ticket resolves; a submission
//!   racing shutdown resolves to [`Error::ServerClosed`] instead of
//!   hanging. No ticket is ever lost or answered twice.
//! * An optional [`Confidence`] policy turns low-confidence samples into
//!   [`Prediction::Abstain`] responses, with a calibrated abstention
//!   count in [`ServerStats`].
//!
//! # Versioned serving: hot swap, canary, drift
//!
//! A live server is *versioned*: it starts serving deployment **v1**, and
//! [`Server::swap`] moves it to new weights with zero downtime. The new
//! engine is deployed first (double buffering — v1 keeps serving while v2
//! decomposes through the cached SVD path), then the switch is a **version
//! barrier**: every admission stamps its ticket with the serving version
//! under a read lock, and the swap publishes a control message into the
//! same FIFO queue under the write lock — so the queue order *is* the
//! version order. The batcher flushes everything admitted before the
//! barrier against v1, applies the switch at that micro-batch boundary,
//! and serves everything after against v2. No ticket is lost, duplicated,
//! or served by a version other than the one stamped at admission.
//!
//! [`Server::canary`] stages a candidate *alongside* the current version
//! instead of replacing it: a seeded, deterministic fraction of admissions
//! routes to the candidate, per-version accept/abstain/correct tallies
//! accumulate in [`CanaryStats`] through the existing [`Confidence`]
//! machinery, and [`Server::promote`] / [`Server::rollback`] settle which
//! version keeps the lane. [`ServerBuilder::drift`] closes the loop with
//! the online-recalibration scenario: a
//! [`PhaseDrift`] random walk perturbs the
//! live meshes between flushes, and periodic hot swaps to freshly
//! calibrated deployments restore accuracy without dropping traffic.
//!
//! Everything is plain threads and channels — no async runtime, matching
//! the workspace's std-only stance.

use crate::engine::{argmax, Confidence, InferenceEngine, StageStats};
use crate::error::Error;
use oplix_linalg::Complex64;
use oplix_nn::ctensor::CTensor;
use oplix_nn::network::Network;
use oplix_photonics::svd_map::MeshStyle;
use oplix_photonics::PhaseDrift;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex, RwLock};
use std::thread;
use std::time::{Duration, Instant};

use crate::deploy::DeployedDetection;

/// How often the idle batcher wakes to check the shutdown flag. Purely a
/// shutdown-latency knob: while requests flow, the batcher blocks on the
/// queue (or the batch deadline) instead.
const IDLE_POLL: Duration = Duration::from_millis(1);

/// Recovers the guard from a possibly poisoned lock.
///
/// A poisoned lock means a *different* thread panicked while holding it.
/// Every lock on the serving tier guards state that is updated atomically
/// with respect to the guard (a version counter, a lane table, a tally
/// snapshot), so the value inside stays consistent even if a sibling
/// thread died elsewhere — and the panic policy forbids converting that
/// thread's crash into this one's. Take the guard and keep serving.
pub(crate) fn relock<G>(result: Result<G, std::sync::PoisonError<G>>) -> G {
    result.unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// The response a served request resolves to.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Prediction {
    /// The predicted class index.
    Class(usize),
    /// The sample's confidence fell below the server's [`Confidence`]
    /// policy; the prediction is withheld but reported for calibration.
    Abstain {
        /// The class the engine would have predicted.
        best: usize,
        /// The (sub-threshold) confidence score.
        confidence: f64,
    },
}

impl Prediction {
    /// The predicted class, or `None` on an abstention.
    pub fn class(&self) -> Option<usize> {
        match *self {
            Prediction::Class(c) => Some(c),
            Prediction::Abstain { .. } => None,
        }
    }

    /// Whether the server abstained on this sample.
    pub fn is_abstain(&self) -> bool {
        matches!(self, Prediction::Abstain { .. })
    }
}

/// One queued request: the staged sample plus its reply channel, the
/// admission timestamp the wait-time stats are measured from, the serving
/// version stamped at admission, and an optional ground-truth label for
/// online (canary) accuracy tallies.
pub(crate) struct Request {
    fields: Vec<Complex64>,
    label: Option<usize>,
    version: u64,
    reply: mpsc::Sender<Result<Prediction, Error>>,
    enqueued_at: Instant,
}

/// What flows through a server (or router lane) queue: data requests
/// interleaved with version-change controls. Because the queue is FIFO
/// and controls are published under the version gate's write lock, a
/// control is popped *after* every request stamped with the old version
/// and *before* every request stamped with the new one.
pub(crate) enum Envelope {
    Request(Request),
    Control(Control),
}

/// A version-change command riding the data queue. Shared with the
/// router tier (lanes use the [`Control::Swap`] variant).
pub(crate) enum Control {
    /// Replace the current engine with `engine`, serving as `version`
    /// from this micro-batch boundary on.
    Swap {
        engine: Box<InferenceEngine>,
        version: u64,
        reply: mpsc::Sender<Result<SwapOutcome, Error>>,
    },
    /// Stage `engine` as the canary candidate for `version`; admissions
    /// stamped with `version` serve through it while tallies accumulate.
    Canary {
        engine: Box<InferenceEngine>,
        version: u64,
        confidence: Option<Confidence>,
        tallies: Arc<CanaryCounters>,
    },
    /// Retire the baseline and make the canary candidate current.
    Promote {
        reply: mpsc::Sender<Result<SwapOutcome, Error>>,
    },
    /// Discard the canary candidate; the baseline keeps the lane.
    Rollback {
        reply: mpsc::Sender<Result<SwapOutcome, Error>>,
    },
}

/// The live canary split, as the admission side sees it.
pub(crate) struct CanarySplit {
    version: u64,
    fraction: f64,
    drawn: AtomicU64,
    seed: u64,
    tallies: Arc<CanaryCounters>,
}

/// The version gate's guarded state: the current serving version and the
/// live canary split, if one is staged.
pub(crate) struct GateState {
    pub(crate) current: u64,
    pub(crate) canary: Option<CanarySplit>,
}

/// The admission-side version barrier. Every submission stamps its
/// version and sends under the read lock; every version change (swap,
/// canary start, promote, rollback) mutates the state and publishes its
/// control message under the write lock. FIFO queue order therefore
/// equals version order: the batcher never sees an old-version request
/// after the control that retires that version, which is what makes the
/// switch atomic at a micro-batch boundary.
pub(crate) struct VersionGate {
    state: RwLock<GateState>,
    /// Lock-free mirror of `state.current` for stats snapshots.
    current: AtomicU64,
}

/// Hashes (seed, draw index) to a uniform value in `[0, 1)` — the
/// deterministic admission split of a canary. SplitMix64 finalizer over a
/// golden-ratio sequence: replaying the same seed over the same draw
/// indices reproduces the exact partition.
fn split_unit(seed: u64, n: u64) -> f64 {
    let mut z = seed.wrapping_add(n.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    (z >> 11) as f64 / (1u64 << 53) as f64
}

impl VersionGate {
    pub(crate) fn new() -> Self {
        VersionGate {
            state: RwLock::new(GateState {
                current: 1,
                canary: None,
            }),
            current: AtomicU64::new(1),
        }
    }

    /// The current serving version (the canary candidate, while staged,
    /// is `version() + 1`).
    pub(crate) fn version(&self) -> u64 {
        self.current.load(Ordering::Relaxed)
    }

    /// Stamps one admission and runs `send` under the read gate, so no
    /// version barrier can land between the stamp and the queue send.
    /// Returns the stamped version on a successful send.
    pub(crate) fn admit<E>(&self, send: impl FnOnce(u64) -> Result<(), E>) -> Result<u64, E> {
        let state = relock(self.state.read());
        let version = match &state.canary {
            Some(c) => {
                let n = c.drawn.fetch_add(1, Ordering::Relaxed);
                if split_unit(c.seed, n) < c.fraction {
                    c.version
                } else {
                    state.current
                }
            }
            None => state.current,
        };
        send(version)?;
        if let Some(c) = &state.canary {
            if let Some(slot) = c.tallies.slot(version) {
                slot.routed.fetch_add(1, Ordering::Relaxed);
            }
        }
        Ok(version)
    }

    /// Runs a version barrier: `f` mutates the gate state and publishes
    /// its control message while every admission is excluded.
    pub(crate) fn barrier<T>(
        &self,
        f: impl FnOnce(&mut GateState) -> Result<T, Error>,
    ) -> Result<T, Error> {
        let mut state = relock(self.state.write());
        let out = f(&mut state)?;
        self.current.store(state.current, Ordering::Relaxed);
        Ok(out)
    }
}

/// One version's atomic tally slots during a canary.
pub(crate) struct VersionTallyCounters {
    version: u64,
    routed: AtomicU64,
    served: AtomicU64,
    accepted: AtomicU64,
    abstained: AtomicU64,
    labeled: AtomicU64,
    correct: AtomicU64,
}

impl VersionTallyCounters {
    fn new(version: u64) -> Self {
        VersionTallyCounters {
            version,
            routed: AtomicU64::new(0),
            served: AtomicU64::new(0),
            accepted: AtomicU64::new(0),
            abstained: AtomicU64::new(0),
            labeled: AtomicU64::new(0),
            correct: AtomicU64::new(0),
        }
    }

    fn snapshot(&self) -> VersionTally {
        VersionTally {
            version: self.version,
            routed: self.routed.load(Ordering::Relaxed),
            served: self.served.load(Ordering::Relaxed),
            accepted: self.accepted.load(Ordering::Relaxed),
            abstained: self.abstained.load(Ordering::Relaxed),
            labeled: self.labeled.load(Ordering::Relaxed),
            correct: self.correct.load(Ordering::Relaxed),
        }
    }
}

/// The shared accumulator of one canary run: a tally slot per version
/// plus the split parameters, so a snapshot is self-describing.
pub(crate) struct CanaryCounters {
    fraction: f64,
    seed: u64,
    baseline: VersionTallyCounters,
    candidate: VersionTallyCounters,
}

impl CanaryCounters {
    fn new(baseline: u64, candidate: u64, fraction: f64, seed: u64) -> Self {
        CanaryCounters {
            fraction,
            seed,
            baseline: VersionTallyCounters::new(baseline),
            candidate: VersionTallyCounters::new(candidate),
        }
    }

    fn slot(&self, version: u64) -> Option<&VersionTallyCounters> {
        if version == self.baseline.version {
            Some(&self.baseline)
        } else if version == self.candidate.version {
            Some(&self.candidate)
        } else {
            None
        }
    }

    fn snapshot(&self) -> CanaryStats {
        CanaryStats {
            fraction: self.fraction,
            seed: self.seed,
            baseline: self.baseline.snapshot(),
            candidate: self.candidate.snapshot(),
        }
    }
}

/// Per-version serving tallies of a canary run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct VersionTally {
    /// The version these tallies belong to.
    pub version: u64,
    /// Admissions the seeded split routed to this version.
    pub routed: u64,
    /// Requests of this version actually served so far.
    pub served: u64,
    /// Served requests that resolved to a [`Prediction::Class`].
    pub accepted: u64,
    /// Served requests that resolved to [`Prediction::Abstain`] under
    /// the effective confidence policy.
    pub abstained: u64,
    /// Served requests that carried a ground-truth label
    /// (see [`Client::submit_labeled`]).
    pub labeled: u64,
    /// Labeled requests whose delivered prediction matched the label
    /// (an abstention never counts as correct).
    pub correct: u64,
}

impl VersionTally {
    /// Online accuracy over labeled traffic: `correct / labeled`
    /// (zero before any labeled request was served).
    pub fn accuracy(&self) -> f64 {
        if self.labeled == 0 {
            0.0
        } else {
            self.correct as f64 / self.labeled as f64
        }
    }
}

/// A snapshot of a canary run's split parameters and per-version tallies;
/// see [`Server::canary_stats`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CanaryStats {
    /// The admission fraction routed to the candidate.
    pub fraction: f64,
    /// The seed of the deterministic admission split.
    pub seed: u64,
    /// Tallies of the baseline (current) version.
    pub baseline: VersionTally,
    /// Tallies of the candidate version.
    pub candidate: VersionTally,
}

/// How a canary routes and judges traffic; see [`Server::canary`].
///
/// `fraction` of admissions (a seeded, deterministic split — replaying
/// the same seed reproduces the exact partition) route to the candidate
/// version; the rest stay on the baseline. While the canary is live, an
/// optional `confidence` policy overrides the server's own for *all*
/// admissions, so the per-version accept/abstain tallies compare
/// apples-to-apples.
///
/// ```
/// use oplixnet::serve::{CanaryPolicy, Server};
/// use oplixnet::engine::{Confidence, InferenceEngine};
/// use oplixnet::zoo::{build_fcnn, FcnnConfig, ModelVariant};
/// use oplix_photonics::decoder::DecoderKind;
/// use oplix_photonics::svd_map::MeshStyle;
/// use oplix_linalg::Complex64;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let variant = ModelVariant::Split(DecoderKind::Merge);
/// let cfg = FcnnConfig { input: 4, hidden: 4, classes: 2 };
/// let mut rng = StdRng::seed_from_u64(5);
/// let v1 = build_fcnn(&cfg, variant, &mut rng);
/// let v2 = build_fcnn(&cfg, variant, &mut rng);
///
/// let server = Server::builder()
///     .serve_network(&v1, variant.detection(), MeshStyle::Clements)
///     .expect("v1 deploys");
/// let candidate = InferenceEngine::from_network(&v2, variant.detection(), MeshStyle::Clements)
///     .expect("v2 deploys");
///
/// // Route 30% of admissions to v2, judging both sides under one policy.
/// let policy = CanaryPolicy {
///     fraction: 0.3,
///     confidence: Some(Confidence { threshold: 0.3, top_k: 2 }),
///     seed: 42,
/// };
/// server.canary(candidate, policy).expect("canary stages");
///
/// let client = server.client();
/// let tickets: Vec<_> = (0..40)
///     .map(|_| client.submit_labeled(vec![Complex64::ONE; 4], 0).expect("admits"))
///     .collect();
/// let candidates = tickets.iter().filter(|t| t.version() == 2).count();
/// for t in tickets { t.wait().expect("serves"); }
///
/// let stats = server.canary_stats().expect("canary ran");
/// assert_eq!(stats.candidate.routed, candidates as u64);
/// assert_eq!(stats.baseline.served + stats.candidate.served, 40);
///
/// // The tallies say which version keeps the lane.
/// let keep_v2 = stats.candidate.accuracy() >= stats.baseline.accuracy();
/// let outcome = if keep_v2 { server.promote() } else { server.rollback() };
/// outcome.expect("decision lands").wait().expect("applies");
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CanaryPolicy {
    /// Fraction of admissions routed to the candidate (clamped to
    /// `[0, 1]` at [`Server::canary`] time).
    pub fraction: f64,
    /// Confidence policy judging *both* versions while the canary is
    /// live; `None` keeps the server's own policy.
    pub confidence: Option<Confidence>,
    /// Seed of the deterministic admission split.
    pub seed: u64,
}

impl Default for CanaryPolicy {
    /// 10% of traffic to the candidate, the server's own confidence
    /// policy, seed 0.
    fn default() -> Self {
        CanaryPolicy {
            fraction: 0.1,
            confidence: None,
            seed: 0,
        }
    }
}

/// How a version change settled; see [`SwapTicket::wait`].
#[derive(Debug)]
pub enum SwapOutcome {
    /// The change applied at a micro-batch boundary.
    Applied {
        /// The engine taken out of service — the old current on a swap
        /// or promote, the candidate on a rollback. Its serving counters
        /// ride along, so retired versions remain auditable.
        retired: InferenceEngine,
        /// The version serving after the change.
        version: u64,
    },
    /// The server (or lane) began draining before the swap could apply;
    /// the replacement engine comes back instead of taking the lane.
    /// Requests that were already admitted against the replacement's
    /// version were still served by it during the drain.
    Aborted {
        /// The engine that was to be installed.
        replacement: InferenceEngine,
    },
}

impl SwapOutcome {
    /// Whether the change applied (as opposed to aborting in a drain).
    pub fn is_applied(&self) -> bool {
        matches!(self, SwapOutcome::Applied { .. })
    }

    /// The engine the outcome carries, either way: the retired engine of
    /// an applied change or the never-installed replacement of an
    /// aborted one.
    pub fn into_engine(self) -> InferenceEngine {
        match self {
            SwapOutcome::Applied { retired, .. } => retired,
            SwapOutcome::Aborted { replacement } => replacement,
        }
    }
}

/// A pending version change. Resolves once the batcher applies the
/// change at a micro-batch boundary (or aborts it during a drain) — like
/// a request [`Ticket`], it never hangs.
#[derive(Debug)]
pub struct SwapTicket {
    pub(crate) rx: mpsc::Receiver<Result<SwapOutcome, Error>>,
}

impl SwapTicket {
    /// Blocks until the version change settles.
    ///
    /// # Errors
    ///
    /// [`Error::ServerClosed`] if the server shut down before the
    /// decision could settle (promote/rollback controls reaching a
    /// draining batcher report this way; an undrained swap resolves to
    /// [`SwapOutcome::Aborted`] instead, so its engine is never lost).
    pub fn wait(self) -> Result<SwapOutcome, Error> {
        self.rx.recv().unwrap_or(Err(Error::ServerClosed))
    }

    /// Non-blocking poll: `None` while the change is still queued.
    pub fn try_wait(&self) -> Option<Result<SwapOutcome, Error>> {
        match self.rx.try_recv() {
            Ok(done) => Some(done),
            Err(mpsc::TryRecvError::Empty) => None,
            Err(mpsc::TryRecvError::Disconnected) => Some(Err(Error::ServerClosed)),
        }
    }
}

/// Log₂-bucketed wait-time tracker: each admitted request's queue wait
/// (admission → flush) lands in the bucket of its nanosecond count's bit
/// length, so the whole distribution is a fixed array of relaxed atomic
/// counters — recordable from the batcher's hot path without locks, and
/// cheap enough that the single-model [`Server`] and every router lane
/// carry one. Quantiles come back as the upper bound of the bucket the
/// cumulative count crosses (≤ 2× the true value, which is plenty for
/// p50/p99 SLO reporting).
pub(crate) struct WaitTracker {
    max_nanos: AtomicU64,
    buckets: [AtomicU64; 65],
}

impl Default for WaitTracker {
    fn default() -> Self {
        WaitTracker {
            max_nanos: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

impl WaitTracker {
    pub(crate) fn record(&self, wait: Duration) {
        let nanos = wait.as_nanos().min(u64::MAX as u128) as u64;
        self.max_nanos.fetch_max(nanos, Ordering::Relaxed);
        // Bucket i holds waits whose nanosecond count has bit length i,
        // i.e. [2^(i-1), 2^i); bucket 0 is a zero-length wait and the top
        // bucket (i = 64) waits of 2^63 ns and beyond.
        let bucket = (u64::BITS - nanos.leading_zeros()) as usize;
        self.buckets[bucket].fetch_add(1, Ordering::Relaxed);
    }

    /// The longest wait observed since construction.
    pub(crate) fn max(&self) -> Duration {
        Duration::from_nanos(self.max_nanos.load(Ordering::Relaxed))
    }

    /// The `q`-quantile (0 ≤ q ≤ 1) of recorded waits, as the upper bound
    /// of the bucket the cumulative count crosses; zero when nothing has
    /// been recorded yet.
    pub(crate) fn quantile(&self, q: f64) -> Duration {
        let counts: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return Duration::ZERO;
        }
        let rank = ((total as f64) * q.clamp(0.0, 1.0)).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                // Upper bound of bucket i: 2^i − 1 nanoseconds (saturating
                // on the top bucket), capped by the true observed maximum.
                let bound = if i >= 64 { u64::MAX } else { (1u64 << i) - 1 };
                return Duration::from_nanos(bound).min(self.max());
            }
        }
        self.max()
    }
}

/// Process-lifetime counters shared by the server handle, its clients and
/// the batcher thread. Also the per-lane counters of the
/// [`crate::router`] tier — the router and the single-model server
/// report through this one shape.
#[derive(Default)]
pub(crate) struct Counters {
    pub(crate) submitted: AtomicU64,
    pub(crate) rejected: AtomicU64,
    pub(crate) served: AtomicU64,
    pub(crate) abstained: AtomicU64,
    pub(crate) batches: AtomicU64,
    pub(crate) batch_fill: AtomicU64,
    /// Requests admitted but not yet answered (queued or in flight).
    pub(crate) depth: AtomicU64,
    /// Version changes the batcher has applied (swaps and promotes).
    pub(crate) swaps: AtomicU64,
    pub(crate) waits: WaitTracker,
    /// Latest per-stage chip/occupancy snapshot published by the batcher
    /// after each served flush (empty until the first flush).
    pub(crate) stages: Mutex<Vec<StageStats>>,
}

impl Counters {
    /// Records a successful admission.
    pub(crate) fn admitted(&self) {
        self.submitted.fetch_add(1, Ordering::Relaxed);
        self.depth.fetch_add(1, Ordering::Relaxed);
    }

    /// Publishes the serving engine's per-stage stats (chip reports plus
    /// pipeline occupancy) for the next [`Counters::snapshot`].
    pub(crate) fn publish_stages(&self, stages: Vec<StageStats>) {
        *relock(self.stages.lock()) = stages;
    }

    /// Snapshot of the counters in the public stats shape; the serving
    /// version lives on the gate, so the caller supplies it.
    pub(crate) fn snapshot(&self, version: u64) -> ServerStats {
        ServerStats {
            submitted: self.submitted.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            served: self.served.load(Ordering::Relaxed),
            abstained: self.abstained.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            batched_samples: self.batch_fill.load(Ordering::Relaxed),
            queue_depth: self.depth.load(Ordering::Relaxed),
            version,
            swaps: self.swaps.load(Ordering::Relaxed),
            max_wait_observed: self.waits.max(),
            stage_stats: relock(self.stages.lock()).clone(),
        }
    }
}

/// A snapshot of a [`Server`]'s counters. The router tier reports its
/// per-model lanes through this same shape (see
/// [`crate::router::ModelStats`]).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ServerStats {
    /// Requests admitted to the queue.
    pub submitted: u64,
    /// [`Client::try_submit`] calls bounced by a full queue.
    pub rejected: u64,
    /// Responses delivered (predictions, abstentions and per-sample
    /// errors alike).
    pub served: u64,
    /// Responses that were abstentions under the confidence policy.
    pub abstained: u64,
    /// Micro-batches flushed through the engine.
    pub batches: u64,
    /// Total samples across all flushed batches.
    pub batched_samples: u64,
    /// Requests admitted but not yet answered at snapshot time — the
    /// live queue depth (queued plus in-flight), the quantity the router
    /// tier weighs fair shares by.
    pub queue_depth: u64,
    /// The deployment version new admissions are stamped with (1 at
    /// launch; each applied swap or promote increments it).
    pub version: u64,
    /// Version changes applied so far (hot swaps and canary promotes).
    pub swaps: u64,
    /// The longest admission-to-flush wait any request has observed.
    pub max_wait_observed: Duration,
    /// Per-stage chip reports (mesh depth, insertion loss, latency) and
    /// pipeline occupancy for the serving engine, one entry per deployed
    /// stage, as of the last served flush. Empty before the first flush.
    /// Occupancy counters stay zero unless the engine serves in
    /// stage-pipelined mode ([`InferenceEngine::with_stage_pipeline`]).
    pub stage_stats: Vec<StageStats>,
}

impl ServerStats {
    /// Mean samples per flushed micro-batch — the occupancy the batcher
    /// achieved (1.0 means no coalescing happened at all).
    pub fn mean_batch_fill(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.batched_samples as f64 / self.batches as f64
        }
    }
}

/// The batcher's flush policy plus the optional confidence policy.
struct BatchPolicy {
    max_batch: usize,
    max_wait: Duration,
    confidence: Option<Confidence>,
}

/// Configures and launches a [`Server`]; see [`Server::builder`].
#[derive(Clone, Debug)]
pub struct ServerBuilder {
    max_batch: usize,
    max_wait: Duration,
    queue_cap: usize,
    workers: Option<usize>,
    stage_pipeline: Option<bool>,
    confidence: Option<Confidence>,
    drift: Option<PhaseDrift>,
}

impl Default for ServerBuilder {
    fn default() -> Self {
        ServerBuilder {
            max_batch: 64,
            max_wait: Duration::from_millis(1),
            queue_cap: 1024,
            workers: None,
            stage_pipeline: None,
            confidence: None,
            drift: None,
        }
    }
}

impl ServerBuilder {
    /// Flush a micro-batch once it holds this many samples (clamped to
    /// ≥ 1; default 64, one engine serving window).
    pub fn max_batch(mut self, n: usize) -> Self {
        self.max_batch = n.max(1);
        self
    }

    /// Flush a micro-batch once its oldest request has waited this long
    /// (default 1 ms; clamped to ≤ 1 h so deadlines never overflow).
    pub fn max_wait(mut self, d: Duration) -> Self {
        self.max_wait = d.min(Duration::from_secs(3600));
        self
    }

    /// Bound of the admission queue (clamped to ≥ 1; default 1024).
    /// [`Client::submit`] blocks while the queue holds this many pending
    /// requests; [`Client::try_submit`] returns [`Error::QueueFull`].
    pub fn queue_cap(mut self, n: usize) -> Self {
        self.queue_cap = n.max(1);
        self
    }

    /// Worker count of the backing engine (see
    /// [`InferenceEngine::set_num_workers`]; `0` = the shared
    /// [`crate::pool::jobs`] budget). When unset, the engine keeps
    /// whatever worker count it was built with.
    pub fn workers(mut self, n: usize) -> Self {
        self.workers = Some(n);
        self
    }

    /// Serves through the engine's stage-pipelined walk (see
    /// [`InferenceEngine::with_stage_pipeline`]): windows stream through
    /// the deployed stages concurrently, results stay bitwise identical
    /// to the sequential walk. When unset, the engine keeps whatever
    /// mode it was built with.
    pub fn stage_pipeline(mut self, on: bool) -> Self {
        self.stage_pipeline = Some(on);
        self
    }

    /// Installs an early-exit [`Confidence`] policy: low-confidence
    /// samples resolve to [`Prediction::Abstain`] and are counted in
    /// [`ServerStats::abstained`].
    pub fn confidence(mut self, c: Confidence) -> Self {
        self.confidence = Some(c);
        self
    }

    /// Serves under continuous phase drift: the batcher applies one
    /// random-walk step of `drift` to every live engine (current and any
    /// staged candidate — they share the physical substrate) after each
    /// flush cycle that served samples. Accuracy then degrades as drift
    /// accumulates; a hot swap to a freshly calibrated deployment
    /// ([`Server::swap`]) is the recalibration that restores it.
    pub fn drift(mut self, drift: PhaseDrift) -> Self {
        self.drift = Some(drift);
        self
    }

    /// Launches the server over an existing engine (the engine comes
    /// back out of [`Server::shutdown`], serving counters included).
    pub fn serve_engine(self, mut engine: InferenceEngine) -> Server {
        if let Some(w) = self.workers {
            engine.set_num_workers(w);
        }
        if let Some(on) = self.stage_pipeline {
            engine.set_stage_pipeline(on);
        }
        let input_dim = engine.input_dim();
        let (tx, rx) = mpsc::sync_channel::<Envelope>(self.queue_cap);
        let stop = Arc::new(AtomicBool::new(false));
        let counters = Arc::new(Counters::default());
        let gate = Arc::new(VersionGate::new());
        let policy = BatchPolicy {
            max_batch: self.max_batch,
            max_wait: self.max_wait,
            confidence: self.confidence,
        };
        let drift = self.drift;
        let handle = {
            let stop = Arc::clone(&stop);
            let counters = Arc::clone(&counters);
            thread::Builder::new()
                .name("oplix-serve".into())
                .spawn(move || batcher(engine, rx, policy, stop, counters, drift))
                .expect("failed to spawn the serve batcher thread")
        };
        Server {
            tx: Some(tx),
            stop,
            counters,
            gate,
            last_canary: Mutex::new(None),
            input_dim,
            queue_cap: self.queue_cap,
            handle: Some(handle),
        }
    }

    /// Deploys a trained network (through the process-wide deployment
    /// cache — repeated servers over the same weights share one cached
    /// decomposition) and launches the server over it.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Deploy`] if the network cannot be mapped onto an
    /// FCNN photonic pipeline.
    pub fn serve_network(
        self,
        net: &Network,
        detection: DeployedDetection,
        style: MeshStyle,
    ) -> Result<Server, Error> {
        Ok(self.serve_engine(InferenceEngine::from_network(net, detection, style)?))
    }
}

/// A concurrent serving front end over one deployed model: a bounded
/// request queue drained by a micro-batcher thread into the sharded
/// [`InferenceEngine`]. See the [module docs](crate::serve) for the
/// queue → batcher → shards dataflow and the backpressure/shutdown
/// contract.
///
/// ```
/// use oplixnet::serve::{Prediction, Server};
/// use oplixnet::zoo::{build_fcnn, FcnnConfig, ModelVariant};
/// use oplix_photonics::decoder::DecoderKind;
/// use oplix_photonics::svd_map::MeshStyle;
/// use oplix_linalg::Complex64;
/// use rand::{rngs::StdRng, SeedableRng};
/// use std::time::Duration;
///
/// let mut rng = StdRng::seed_from_u64(1);
/// let variant = ModelVariant::Split(DecoderKind::Merge);
/// let net = build_fcnn(&FcnnConfig { input: 6, hidden: 5, classes: 2 }, variant, &mut rng);
/// let server = Server::builder()
///     .max_batch(16)
///     .max_wait(Duration::from_micros(200))
///     .queue_cap(64)
///     .serve_network(&net, variant.detection(), MeshStyle::Clements)
///     .expect("FCNN deploys");
///
/// let client = server.client();
/// let ticket = client.submit(vec![Complex64::ONE; 6]).expect("queue admits");
/// assert!(matches!(ticket.wait(), Ok(Prediction::Class(_))));
///
/// let engine = server.shutdown(); // drains, then hands the engine back
/// assert_eq!(engine.stats().samples, 1);
/// ```
pub struct Server {
    tx: Option<mpsc::SyncSender<Envelope>>,
    stop: Arc<AtomicBool>,
    counters: Arc<Counters>,
    gate: Arc<VersionGate>,
    /// The live (or most recent) canary accumulator, for
    /// [`Server::canary_stats`].
    last_canary: Mutex<Option<Arc<CanaryCounters>>>,
    input_dim: usize,
    queue_cap: usize,
    handle: Option<thread::JoinHandle<InferenceEngine>>,
}

impl Server {
    /// Starts configuring a server; launch it with
    /// [`ServerBuilder::serve_engine`] or [`ServerBuilder::serve_network`].
    pub fn builder() -> ServerBuilder {
        ServerBuilder::default()
    }

    /// A new cloneable client handle onto this server's queue.
    pub fn client(&self) -> Client {
        Client {
            tx: self
                .tx
                .as_ref()
                .expect("server handle outlives shutdown")
                .clone(),
            stop: Arc::clone(&self.stop),
            counters: Arc::clone(&self.counters),
            gate: Arc::clone(&self.gate),
            input_dim: self.input_dim,
            queue_cap: self.queue_cap,
        }
    }

    /// The complex fan-in every submitted sample must have.
    pub fn input_dim(&self) -> usize {
        self.input_dim
    }

    /// The deployment version new admissions are stamped with.
    pub fn version(&self) -> u64 {
        self.gate.version()
    }

    /// A snapshot of the serving counters.
    pub fn stats(&self) -> ServerStats {
        self.counters.snapshot(self.gate.version())
    }

    /// Checks a candidate engine against the serving geometry and the
    /// server's liveness — shared by every version-change entry point.
    fn check_candidate(&self, input_dim: usize) -> Result<&mpsc::SyncSender<Envelope>, Error> {
        if input_dim != self.input_dim {
            return Err(Error::ShapeMismatch {
                expected: self.input_dim,
                got: input_dim,
                what: "candidate input width",
            });
        }
        if self.stop.load(Ordering::SeqCst) {
            return Err(Error::ServerClosed);
        }
        // `tx` is only vacated by `shutdown`, which also raises `stop`
        // first — but degrade to the typed error rather than asserting it.
        self.tx.as_ref().ok_or(Error::ServerClosed)
    }

    /// Hot-swaps the server to a new deployment with zero downtime. The
    /// candidate was deployed *before* this call (double buffering — v1
    /// keeps serving while v2's SVD decompositions run, warm through the
    /// deploy cache); the swap itself is a version barrier: admissions
    /// stamped with the old version are all flushed against the old
    /// engine, the batcher switches at that micro-batch boundary, and
    /// every later admission serves against the candidate. No ticket is
    /// lost, duplicated, or served by a version other than the one it was
    /// admitted under.
    ///
    /// Returns a [`SwapTicket`]; [`SwapTicket::wait`] resolves to
    /// [`SwapOutcome::Applied`] carrying the retired engine once the
    /// switch lands (or [`SwapOutcome::Aborted`] carrying the candidate
    /// back if the server began draining first — an engine is never
    /// silently dropped).
    ///
    /// # Errors
    ///
    /// [`Error::ShapeMismatch`] if the candidate's input width differs
    /// from the serving geometry, [`Error::CanaryActive`] while a canary
    /// is staged (settle it with [`Server::promote`] /
    /// [`Server::rollback`] first; the candidate engine is dropped on
    /// this error), [`Error::ServerClosed`] after shutdown.
    ///
    /// ```
    /// use oplixnet::serve::{Server, SwapOutcome};
    /// use oplixnet::engine::InferenceEngine;
    /// use oplixnet::zoo::{build_fcnn, FcnnConfig, ModelVariant};
    /// use oplix_photonics::decoder::DecoderKind;
    /// use oplix_photonics::svd_map::MeshStyle;
    /// use oplix_linalg::Complex64;
    /// use rand::{rngs::StdRng, SeedableRng};
    ///
    /// let variant = ModelVariant::Split(DecoderKind::Merge);
    /// let cfg = FcnnConfig { input: 4, hidden: 4, classes: 2 };
    /// let mut rng = StdRng::seed_from_u64(4);
    /// let v1 = build_fcnn(&cfg, variant, &mut rng);
    /// let v2 = build_fcnn(&cfg, variant, &mut rng);
    ///
    /// let server = Server::builder()
    ///     .serve_network(&v1, variant.detection(), MeshStyle::Clements)
    ///     .expect("v1 deploys");
    /// let client = server.client();
    /// let before = client.submit(vec![Complex64::ONE; 4]).expect("admits");
    /// assert_eq!(before.version(), 1);
    ///
    /// // Deploy v2 while v1 keeps serving, then switch atomically.
    /// let candidate = InferenceEngine::from_network(&v2, variant.detection(), MeshStyle::Clements)
    ///     .expect("v2 deploys");
    /// let swap = server.swap(candidate).expect("swap admits");
    /// match swap.wait().expect("applies") {
    ///     SwapOutcome::Applied { retired, version } => {
    ///         assert_eq!(version, 2);
    ///         // v1 comes back out, its serving counters intact.
    ///         assert_eq!(retired.input_dim(), 4);
    ///     }
    ///     SwapOutcome::Aborted { .. } => unreachable!("server is live"),
    /// }
    ///
    /// let after = client.submit(vec![Complex64::ONE; 4]).expect("admits");
    /// assert_eq!(after.version(), 2);
    /// assert!(before.wait().is_ok() && after.wait().is_ok());
    /// ```
    pub fn swap(&self, engine: InferenceEngine) -> Result<SwapTicket, Error> {
        let tx = self.check_candidate(engine.input_dim())?;
        self.gate.barrier(|state| {
            if state.canary.is_some() {
                return Err(Error::CanaryActive);
            }
            let version = state.current + 1;
            let (reply, rx) = mpsc::channel();
            tx.send(Envelope::Control(Control::Swap {
                engine: Box::new(engine),
                version,
                reply,
            }))
            .map_err(|_| Error::ServerClosed)?;
            state.current = version;
            Ok(SwapTicket { rx })
        })
    }

    /// [`Server::swap`] from a trained network: deploys it through the
    /// process-wide cache (v1 keeps serving during the decomposition),
    /// then swaps.
    ///
    /// # Errors
    ///
    /// [`Error::Deploy`] if the network cannot be deployed, plus the
    /// [`Server::swap`] conditions.
    pub fn swap_network(
        &self,
        net: &Network,
        detection: DeployedDetection,
        style: MeshStyle,
    ) -> Result<SwapTicket, Error> {
        self.swap(InferenceEngine::from_network(net, detection, style)?)
    }

    /// Stages `engine` as a canary candidate per `policy`: from this call
    /// on, a seeded `policy.fraction` share of admissions is stamped with
    /// the candidate's version and served by it, while per-version
    /// tallies accumulate in [`Server::canary_stats`]. Settle the run
    /// with [`Server::promote`] or [`Server::rollback`]. See
    /// [`CanaryPolicy`] for a walkthrough.
    ///
    /// # Errors
    ///
    /// [`Error::ShapeMismatch`] on a geometry mismatch,
    /// [`Error::CanaryActive`] if a canary is already staged (the
    /// candidate is dropped on this error), [`Error::ServerClosed`] after
    /// shutdown.
    pub fn canary(&self, engine: InferenceEngine, policy: CanaryPolicy) -> Result<(), Error> {
        let tx = self.check_candidate(engine.input_dim())?;
        let fraction = policy.fraction.clamp(0.0, 1.0);
        self.gate.barrier(|state| {
            if state.canary.is_some() {
                return Err(Error::CanaryActive);
            }
            let version = state.current + 1;
            let tallies = Arc::new(CanaryCounters::new(
                state.current,
                version,
                fraction,
                policy.seed,
            ));
            tx.send(Envelope::Control(Control::Canary {
                engine: Box::new(engine),
                version,
                confidence: policy.confidence,
                tallies: Arc::clone(&tallies),
            }))
            .map_err(|_| Error::ServerClosed)?;
            state.canary = Some(CanarySplit {
                version,
                fraction,
                drawn: AtomicU64::new(0),
                seed: policy.seed,
                tallies: Arc::clone(&tallies),
            });
            *relock(self.last_canary.lock()) = Some(tallies);
            Ok(())
        })
    }

    /// [`Server::canary`] from a trained network (deployed through the
    /// process-wide cache while the baseline keeps serving).
    ///
    /// # Errors
    ///
    /// [`Error::Deploy`] if the network cannot be deployed, plus the
    /// [`Server::canary`] conditions.
    pub fn canary_network(
        &self,
        net: &Network,
        detection: DeployedDetection,
        style: MeshStyle,
        policy: CanaryPolicy,
    ) -> Result<(), Error> {
        self.canary(
            InferenceEngine::from_network(net, detection, style)?,
            policy,
        )
    }

    /// Ends the canary in the candidate's favor: new admissions all stamp
    /// the candidate's version, and at the batcher's next micro-batch
    /// boundary the baseline retires (it comes back through the returned
    /// [`SwapTicket`] as [`SwapOutcome::Applied`]). Canary tallies freeze
    /// at the boundary; requests admitted during the canary but served
    /// after the decision no longer tally.
    ///
    /// # Errors
    ///
    /// [`Error::NoCanary`] if no canary is live, [`Error::ServerClosed`]
    /// after shutdown.
    pub fn promote(&self) -> Result<SwapTicket, Error> {
        self.decide_canary(true)
    }

    /// Ends the canary in the baseline's favor: the candidate stops
    /// receiving admissions immediately and comes back through the
    /// returned [`SwapTicket`] (as the `retired` engine of an applied
    /// rollback) at the next micro-batch boundary.
    ///
    /// # Errors
    ///
    /// [`Error::NoCanary`] if no canary is live, [`Error::ServerClosed`]
    /// after shutdown.
    pub fn rollback(&self) -> Result<SwapTicket, Error> {
        self.decide_canary(false)
    }

    fn decide_canary(&self, promote: bool) -> Result<SwapTicket, Error> {
        if self.stop.load(Ordering::SeqCst) {
            return Err(Error::ServerClosed);
        }
        let tx = self.tx.as_ref().ok_or(Error::ServerClosed)?;
        self.gate.barrier(|state| {
            let Some(canary) = state.canary.take() else {
                return Err(Error::NoCanary);
            };
            let (reply, rx) = mpsc::channel();
            let control = if promote {
                Control::Promote { reply }
            } else {
                Control::Rollback { reply }
            };
            tx.send(Envelope::Control(control)).map_err(|_| {
                // The send failing means the batcher is gone; the canary
                // split is already cleared either way.
                Error::ServerClosed
            })?;
            if promote {
                state.current = canary.version;
            }
            Ok(SwapTicket { rx })
        })
    }

    /// Tallies of the live canary run, or the most recent one if it has
    /// been settled; `None` before the first [`Server::canary`].
    pub fn canary_stats(&self) -> Option<CanaryStats> {
        relock(self.last_canary.lock())
            .as_ref()
            .map(|t| t.snapshot())
    }

    /// Shuts the server down and returns its engine: admission closes,
    /// every request already in the queue is served (their tickets
    /// resolve normally), and the batcher thread exits. Submissions
    /// racing the shutdown resolve to [`Error::ServerClosed`]; none hang.
    pub fn shutdown(mut self) -> InferenceEngine {
        self.shutdown_inner()
            .expect("first shutdown of a live server")
    }

    fn shutdown_inner(&mut self) -> Option<InferenceEngine> {
        self.stop.store(true, Ordering::SeqCst);
        drop(self.tx.take());
        self.handle
            .take()
            .map(|h| h.join().expect("serve batcher thread panicked"))
    }
}

impl Drop for Server {
    /// Dropping the handle shuts the server down (draining, like
    /// [`Server::shutdown`]) and discards the engine.
    fn drop(&mut self) {
        let _ = self.shutdown_inner();
    }
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("input_dim", &self.input_dim)
            .field("queue_cap", &self.queue_cap)
            .field("stats", &self.stats())
            .finish()
    }
}

/// A cheap, cloneable handle for submitting samples to a [`Server`].
/// Clones share the server's bounded queue; each clone can submit from
/// its own thread.
///
/// ```
/// use oplixnet::serve::Server;
/// use oplixnet::zoo::{build_fcnn, FcnnConfig, ModelVariant};
/// use oplix_photonics::decoder::DecoderKind;
/// use oplix_photonics::svd_map::MeshStyle;
/// use oplix_linalg::Complex64;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(2);
/// let variant = ModelVariant::Split(DecoderKind::Merge);
/// let net = build_fcnn(&FcnnConfig { input: 4, hidden: 4, classes: 2 }, variant, &mut rng);
/// let server = Server::builder()
///     .serve_network(&net, variant.detection(), MeshStyle::Clements)
///     .expect("FCNN deploys");
///
/// // Submission is non-blocking (while the queue has room) and returns
/// // a ticket immediately; clones are independent handles.
/// let client = server.client();
/// let other = client.clone();
/// let a = client.submit(vec![Complex64::ONE; 4]).expect("admits");
/// let b = other.submit(vec![Complex64::i(); 4]).expect("admits");
/// assert!(a.wait().is_ok() && b.wait().is_ok());
/// ```
#[derive(Clone)]
pub struct Client {
    tx: mpsc::SyncSender<Envelope>,
    stop: Arc<AtomicBool>,
    counters: Arc<Counters>,
    gate: Arc<VersionGate>,
    input_dim: usize,
    queue_cap: usize,
}

impl Client {
    /// The complex fan-in every submitted sample must have.
    pub fn input_dim(&self) -> usize {
        self.input_dim
    }

    fn submit_inner(
        &self,
        fields: Vec<Complex64>,
        label: Option<usize>,
        blocking: bool,
    ) -> Result<Ticket, Error> {
        if fields.len() != self.input_dim {
            return Err(Error::ShapeMismatch {
                expected: self.input_dim,
                got: fields.len(),
                what: "sample width",
            });
        }
        if self.stop.load(Ordering::SeqCst) {
            return Err(Error::ServerClosed);
        }
        let (reply, rx) = mpsc::channel();
        let enqueued_at = Instant::now();
        // Stamp + send under the version gate's read side, so no swap
        // barrier can land between the stamp and the queue send.
        let sent = self.gate.admit(|version| {
            let request = Envelope::Request(Request {
                fields,
                label,
                version,
                reply,
                enqueued_at,
            });
            if blocking {
                self.tx.send(request).map_err(|_| Error::ServerClosed)
            } else {
                self.tx.try_send(request).map_err(|e| match e {
                    mpsc::TrySendError::Full(_) => Error::QueueFull {
                        capacity: self.queue_cap,
                    },
                    mpsc::TrySendError::Disconnected(_) => Error::ServerClosed,
                })
            }
        });
        match sent {
            Ok(version) => {
                self.counters.admitted();
                Ok(Ticket {
                    rx,
                    done: None,
                    version,
                })
            }
            Err(e) => {
                if matches!(e, Error::QueueFull { .. }) {
                    self.counters.rejected.fetch_add(1, Ordering::Relaxed);
                }
                Err(e)
            }
        }
    }

    /// Submits one sample, blocking while the queue is at capacity
    /// (backpressure). Returns a [`Ticket`] that resolves once the
    /// micro-batch containing the sample has been served.
    ///
    /// # Errors
    ///
    /// Returns [`Error::ShapeMismatch`] if the sample width differs from
    /// [`Client::input_dim`], and [`Error::ServerClosed`] if the server
    /// has shut down.
    pub fn submit(&self, fields: Vec<Complex64>) -> Result<Ticket, Error> {
        self.submit_inner(fields, None, true)
    }

    /// [`Client::submit`] with a ground-truth label riding along: if a
    /// canary is live when the sample is served, its version's
    /// [`VersionTally::labeled`] / [`VersionTally::correct`] tallies
    /// update, giving the promote/rollback decision an online accuracy
    /// signal. Without a canary the label is accounting-only.
    ///
    /// # Errors
    ///
    /// As [`Client::submit`].
    pub fn submit_labeled(&self, fields: Vec<Complex64>, label: usize) -> Result<Ticket, Error> {
        self.submit_inner(fields, Some(label), true)
    }

    /// Non-blocking [`Client::submit`]: a full queue surfaces as
    /// [`Error::QueueFull`] instead of blocking, so latency-sensitive
    /// callers can shed load.
    ///
    /// # Errors
    ///
    /// [`Error::QueueFull`] on backpressure, plus the
    /// [`Client::submit`] conditions.
    pub fn try_submit(&self, fields: Vec<Complex64>) -> Result<Ticket, Error> {
        self.submit_inner(fields, None, false)
    }
}

impl std::fmt::Debug for Client {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Client")
            .field("input_dim", &self.input_dim)
            .field("queue_cap", &self.queue_cap)
            .finish()
    }
}

/// A pending response to one submitted sample. [`Ticket::wait`] blocks
/// until the micro-batch containing the sample has been served;
/// [`Ticket::try_wait`] polls.
///
/// ```
/// use oplixnet::serve::{Prediction, Server};
/// use oplixnet::zoo::{build_fcnn, FcnnConfig, ModelVariant};
/// use oplix_photonics::decoder::DecoderKind;
/// use oplix_photonics::svd_map::MeshStyle;
/// use oplix_linalg::Complex64;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(3);
/// let variant = ModelVariant::Split(DecoderKind::Merge);
/// let net = build_fcnn(&FcnnConfig { input: 4, hidden: 4, classes: 2 }, variant, &mut rng);
/// let server = Server::builder()
///     .serve_network(&net, variant.detection(), MeshStyle::Clements)
///     .expect("FCNN deploys");
///
/// let mut ticket = server.client().submit(vec![Complex64::ONE; 4]).expect("admits");
/// // Poll until the batcher flushes, then read the prediction.
/// let prediction = loop {
///     if let Some(done) = ticket.try_wait() {
///         break done.expect("sample is finite");
///     }
///     std::thread::yield_now();
/// };
/// assert!(matches!(prediction, Prediction::Class(_)));
/// ```
#[derive(Debug)]
pub struct Ticket {
    rx: mpsc::Receiver<Result<Prediction, Error>>,
    done: Option<Result<Prediction, Error>>,
    version: u64,
}

impl Ticket {
    /// The deployment version this request was admitted under — the
    /// version whose engine serves it, no matter how many swaps land
    /// while it queues.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Blocks until the sample's micro-batch has been served and returns
    /// the prediction. A server that shut down without serving the
    /// request (a submission racing [`Server::shutdown`]) surfaces as
    /// [`Error::ServerClosed`] — tickets never hang.
    ///
    /// # Errors
    ///
    /// [`Error::NonFiniteLogits`] if the sample poisoned detection,
    /// [`Error::ServerClosed`] as above.
    pub fn wait(mut self) -> Result<Prediction, Error> {
        if let Some(done) = self.done.take() {
            return done;
        }
        self.rx.recv().unwrap_or(Err(Error::ServerClosed))
    }

    /// Non-blocking poll: `None` while the sample is still queued or in
    /// flight, `Some(result)` once served (repeat calls keep returning
    /// the same result).
    pub fn try_wait(&mut self) -> Option<Result<Prediction, Error>> {
        if self.done.is_none() {
            match self.rx.try_recv() {
                Ok(done) => self.done = Some(done),
                Err(mpsc::TryRecvError::Empty) => {}
                Err(mpsc::TryRecvError::Disconnected) => self.done = Some(Err(Error::ServerClosed)),
            }
        }
        self.done.clone()
    }
}

/// Converts sample `row` of a complex view — flat `[N, D]` or image
/// `[N, C, H, W]` (CNN workloads) — into the staged sample a
/// [`Client::submit`] call expects — the exact conversion the engine's
/// tensor paths apply, so a submitted row is bitwise the sample
/// [`InferenceEngine::classify`] would have served.
pub fn sample_row(inputs: &CTensor, row: usize) -> Vec<Complex64> {
    let d: usize = inputs.shape()[1..].iter().product();
    let (re, im) = (inputs.re.as_slice(), inputs.im.as_slice());
    re[row * d..(row + 1) * d]
        .iter()
        .zip(&im[row * d..(row + 1) * d])
        .map(|(&a, &b)| Complex64::new(a as f64, b as f64))
        .collect()
}

/// Turns one logit row into the response under the optional confidence
/// policy. Shared with the router tier so routed and direct serving apply
/// one abstention rule.
pub(crate) fn decide(confidence: Option<Confidence>, logits: &[f64]) -> Prediction {
    match confidence {
        None => Prediction::Class(argmax(logits)),
        Some(c) => {
            let (best, score) = c.score(logits);
            if score >= c.threshold {
                Prediction::Class(best)
            } else {
                Prediction::Abstain {
                    best,
                    confidence: score,
                }
            }
        }
    }
}

/// The batcher-side view of the versioned deployment: which engine serves
/// which version, plus canary bookkeeping. Mutated **only** by the batcher
/// thread, by applying [`Control`] messages popped from the same FIFO the
/// requests ride — so the rack's version history is exactly the admission
/// order's version history.
pub(crate) struct EngineRack {
    current_version: u64,
    current: InferenceEngine,
    /// A live canary candidate, keyed by the version it would become.
    candidate: Option<(u64, InferenceEngine)>,
    /// Confidence policy override while a canary is live (applied to both
    /// versions, so accept/abstain tallies compare like with like).
    confidence_override: Option<Confidence>,
    tallies: Option<Arc<CanaryCounters>>,
    /// Replacements from swaps that arrived while draining: they never
    /// became current, but version-stamped stragglers already admitted
    /// against them may still be queued, so they serve those and are
    /// handed back (`SwapOutcome::Aborted`) at batcher exit.
    aborted: Vec<(
        u64,
        InferenceEngine,
        mpsc::Sender<Result<SwapOutcome, Error>>,
    )>,
}

impl EngineRack {
    pub(crate) fn new(engine: InferenceEngine) -> Self {
        EngineRack {
            current_version: 1,
            current: engine,
            candidate: None,
            confidence_override: None,
            tallies: None,
            aborted: Vec::new(),
        }
    }

    /// The engine that must serve a request admitted under `version`.
    pub(crate) fn engine_for(&mut self, version: u64) -> Option<&mut InferenceEngine> {
        if version == self.current_version {
            return Some(&mut self.current);
        }
        if let Some((v, engine)) = self.candidate.as_mut() {
            if *v == version {
                return Some(engine);
            }
        }
        self.aborted
            .iter_mut()
            .find(|(v, _, _)| *v == version)
            .map(|(_, engine, _)| engine)
    }

    /// The confidence policy in force: the canary override if one is
    /// live, else the server's configured policy.
    pub(crate) fn confidence(&self, base: Option<Confidence>) -> Option<Confidence> {
        self.confidence_override.or(base)
    }

    /// The current serving engine's per-stage stats (chip reports plus
    /// pipeline occupancy), published into counters after each flush.
    pub(crate) fn stage_stats(&self) -> Vec<StageStats> {
        self.current.stage_stats()
    }

    /// Applies one control message at its FIFO position. `draining` is
    /// the stop flag **at apply time**: a swap that lands after shutdown
    /// began must not replace the engine the server hands back, so it
    /// parks in the aborted list instead.
    pub(crate) fn apply(&mut self, control: Control, draining: bool, counters: &Counters) {
        match control {
            Control::Swap {
                engine,
                version,
                reply,
            } => {
                if draining {
                    self.aborted.push((version, *engine, reply));
                } else {
                    let retired = std::mem::replace(&mut self.current, *engine);
                    self.current_version = version;
                    counters.swaps.fetch_add(1, Ordering::Relaxed);
                    let _ = reply.send(Ok(SwapOutcome::Applied { retired, version }));
                }
            }
            Control::Canary {
                engine,
                version,
                confidence,
                tallies,
            } => {
                // Always installed, even while draining: requests stamped
                // with the candidate version may sit behind this control.
                self.candidate = Some((version, *engine));
                self.confidence_override = confidence;
                self.tallies = Some(tallies);
            }
            Control::Promote { reply } => {
                if draining {
                    let _ = reply.send(Err(Error::ServerClosed));
                } else if let Some((version, engine)) = self.candidate.take() {
                    let retired = std::mem::replace(&mut self.current, engine);
                    self.current_version = version;
                    self.confidence_override = None;
                    self.tallies = None;
                    counters.swaps.fetch_add(1, Ordering::Relaxed);
                    let _ = reply.send(Ok(SwapOutcome::Applied { retired, version }));
                } else {
                    let _ = reply.send(Err(Error::NoCanary));
                }
            }
            Control::Rollback { reply } => {
                if draining {
                    let _ = reply.send(Err(Error::ServerClosed));
                } else if let Some((_, engine)) = self.candidate.take() {
                    self.confidence_override = None;
                    self.tallies = None;
                    let _ = reply.send(Ok(SwapOutcome::Applied {
                        retired: engine,
                        version: self.current_version,
                    }));
                } else {
                    let _ = reply.send(Err(Error::NoCanary));
                }
            }
        }
    }

    /// One drift step over every live engine (current + candidate), so a
    /// canary measured under drift faces the same wandered hardware.
    fn drift(&mut self, drift: &mut PhaseDrift) {
        self.current.drift_step(drift);
        if let Some((_, engine)) = self.candidate.as_mut() {
            engine.drift_step(drift);
        }
    }

    /// Batcher exit: resolve every parked aborted swap (its replacement
    /// engine goes back to the caller) and hand the serving engine to the
    /// server for `shutdown()` to return.
    pub(crate) fn finish(mut self) -> InferenceEngine {
        for (_, engine, reply) in self.aborted.drain(..) {
            let _ = reply.send(Ok(SwapOutcome::Aborted {
                replacement: engine,
            }));
        }
        self.current
    }
}

/// The batcher thread body: form micro-batches (flush on `max_batch` or
/// `max_wait`, whichever first), serve them through the engine's
/// borrowed-batch path, reply per request. [`Control`] messages ride the
/// same FIFO as requests; each is applied at a micro-batch boundary,
/// after the requests admitted before it are flushed — which is what
/// makes a swap atomic with respect to version stamps. On shutdown,
/// drain the queue to empty before exiting so no admitted ticket is lost.
fn batcher(
    engine: InferenceEngine,
    rx: mpsc::Receiver<Envelope>,
    policy: BatchPolicy,
    stop: Arc<AtomicBool>,
    counters: Arc<Counters>,
    mut drift: Option<PhaseDrift>,
) -> InferenceEngine {
    // The batcher is a resident service thread: claim one slot of the
    // shared worker budget so engines + grids + servers stay ≈ `--jobs`.
    let _slot = crate::pool::reserve_service_slot();
    let mut rack = EngineRack::new(engine);
    let mut pending: Vec<Request> = Vec::with_capacity(policy.max_batch);
    let mut rows: Vec<Complex64> = Vec::new();
    loop {
        // Admit the first envelope of the next batch.
        let first = loop {
            if stop.load(Ordering::SeqCst) {
                // Draining: serve whatever is still queued, then exit.
                break rx.try_recv().ok();
            }
            match rx.recv_timeout(IDLE_POLL) {
                Ok(e) => break Some(e),
                Err(mpsc::RecvTimeoutError::Timeout) => continue,
                Err(mpsc::RecvTimeoutError::Disconnected) => break None,
            }
        };
        let Some(first) = first else { break };
        let mut control = match first {
            Envelope::Request(r) => {
                pending.push(r);
                None
            }
            Envelope::Control(c) => Some(c),
        };

        // Coalesce until the batch fills, a control message arrives, or
        // the oldest request's deadline passes (during a drain: until
        // the queue is empty). Under load, stragglers are collected with
        // non-blocking drains separated by scheduler yields: parking
        // would make every straggler's `submit` pay a futex wake,
        // turning the coalescing window into one context switch per
        // request. The yield spin is bounded, though — past `SPIN_WAIT`
        // the batcher parks in timed waits for the rest of the deadline,
        // so a long `max_wait` over a trickle of traffic idles the core
        // instead of burning it.
        const SPIN_WAIT: Duration = Duration::from_micros(256);
        let deadline = Instant::now() + policy.max_wait;
        let spin_until = Instant::now() + SPIN_WAIT.min(policy.max_wait);
        'coalesce: while control.is_none() {
            while pending.len() < policy.max_batch {
                match rx.try_recv() {
                    Ok(Envelope::Request(r)) => pending.push(r),
                    Ok(Envelope::Control(c)) => {
                        control = Some(c);
                        break 'coalesce;
                    }
                    Err(_) => break,
                }
            }
            if pending.len() >= policy.max_batch || stop.load(Ordering::SeqCst) {
                break;
            }
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            if now < spin_until {
                thread::yield_now();
            } else {
                // Park for the remaining window (capped so a shutdown is
                // still noticed promptly); a straggler's send wakes us.
                let nap = (deadline - now).min(IDLE_POLL);
                match rx.recv_timeout(nap) {
                    Ok(Envelope::Request(r)) => pending.push(r),
                    Ok(Envelope::Control(c)) => {
                        control = Some(c);
                        break 'coalesce;
                    }
                    Err(mpsc::RecvTimeoutError::Timeout) => {}
                    Err(mpsc::RecvTimeoutError::Disconnected) => break,
                }
            }
        }

        // Everything admitted before the control is flushed first — the
        // micro-batch boundary the swap is atomic at.
        let served = !pending.is_empty();
        if served {
            serve_flush(&mut rack, &policy, &mut pending, &mut rows, &counters);
            counters.publish_stages(rack.stage_stats());
        }
        if let Some(c) = control {
            rack.apply(c, stop.load(Ordering::SeqCst), &counters);
        }
        // One drift step per served flush: phases wander between
        // micro-batches, not within one (a batch sees one chip state).
        if served {
            if let Some(d) = drift.as_mut() {
                rack.drift(d);
            }
        }
    }
    rack.finish()
}

/// Serves one flush worth of pending requests, grouping by stamped
/// version so every request is served by exactly the engine it was
/// admitted under. In steady state the flush is single-version and
/// serves in place; around a swap or canary the flush partitions into
/// per-version sub-batches (stable order within each).
fn serve_flush(
    rack: &mut EngineRack,
    policy: &BatchPolicy,
    pending: &mut Vec<Request>,
    rows: &mut Vec<Complex64>,
    counters: &Counters,
) {
    while !pending.is_empty() {
        let version = pending[0].version;
        if pending.iter().all(|r| r.version == version) {
            serve_group(rack, policy, version, pending, rows, counters);
        } else {
            let (group, rest): (Vec<_>, Vec<_>) =
                pending.drain(..).partition(|r| r.version == version);
            *pending = rest;
            let mut group = group;
            serve_group(rack, policy, version, &mut group, rows, counters);
        }
    }
}

/// Serves one single-version micro-batch and replies to every request in
/// it. A batch poisoned by one sample (non-finite logits) falls back to
/// serving each request individually, so the offending sample gets its
/// error and the rest still get their predictions.
fn serve_group(
    rack: &mut EngineRack,
    policy: &BatchPolicy,
    version: u64,
    pending: &mut Vec<Request>,
    rows: &mut Vec<Complex64>,
    counters: &Counters,
) {
    counters.batches.fetch_add(1, Ordering::Relaxed);
    counters
        .batch_fill
        .fetch_add(pending.len() as u64, Ordering::Relaxed);
    rows.clear();
    for request in pending.iter() {
        counters.waits.record(request.enqueued_at.elapsed());
        rows.extend_from_slice(&request.fields);
    }
    let confidence = rack.confidence(policy.confidence);
    let tallies = rack.tallies.clone();
    let Some(engine) = rack.engine_for(version) else {
        // Unreachable by construction (every stamped version has a rack
        // slot until its last ticket resolves), but never strand a ticket.
        for request in pending.drain(..) {
            respond(counters, &request, Err(Error::ServerClosed));
        }
        return;
    };
    let emit = move |logits: &[f64]| decide(confidence, logits);
    match engine.serve_rows(rows, &emit) {
        Ok(predictions) => {
            for (request, prediction) in pending.drain(..).zip(predictions) {
                tally(tallies.as_deref(), &request, &prediction);
                respond(counters, &request, Ok(prediction));
            }
        }
        Err(_) => {
            // Isolate the poisoned sample(s): per-request error indices
            // are the request's own (single-sample) batch, i.e. 0.
            for request in pending.drain(..) {
                let outcome = engine
                    .serve_rows(&request.fields, &emit)
                    .map(|mut v| v.remove(0));
                if let Ok(prediction) = &outcome {
                    tally(tallies.as_deref(), &request, prediction);
                }
                respond(counters, &request, outcome);
            }
        }
    }
}

/// Canary accounting for one served request: which version served it,
/// whether the (shared) confidence policy accepted or abstained, and —
/// when the request carried a ground-truth label — whether the accepted
/// class was correct.
fn tally(tallies: Option<&CanaryCounters>, request: &Request, prediction: &Prediction) {
    let Some(slot) = tallies.and_then(|t| t.slot(request.version)) else {
        return;
    };
    slot.served.fetch_add(1, Ordering::Relaxed);
    match prediction {
        Prediction::Class(class) => {
            slot.accepted.fetch_add(1, Ordering::Relaxed);
            if let Some(label) = request.label {
                slot.labeled.fetch_add(1, Ordering::Relaxed);
                if *class == label {
                    slot.correct.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        Prediction::Abstain { .. } => {
            slot.abstained.fetch_add(1, Ordering::Relaxed);
            if request.label.is_some() {
                slot.labeled.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

fn respond(counters: &Counters, request: &Request, outcome: Result<Prediction, Error>) {
    counters.served.fetch_add(1, Ordering::Relaxed);
    counters.depth.fetch_sub(1, Ordering::Relaxed);
    if matches!(outcome, Ok(Prediction::Abstain { .. })) {
        counters.abstained.fetch_add(1, Ordering::Relaxed);
    }
    // A dropped ticket just means nobody is listening; serving continues.
    let _ = request.reply.send(outcome);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zoo::{build_fcnn, FcnnConfig, ModelVariant};
    use oplix_nn::tensor::Tensor;
    use oplix_photonics::decoder::DecoderKind;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn engine(seed: u64) -> InferenceEngine {
        let mut rng = StdRng::seed_from_u64(seed);
        let net = build_fcnn(
            &FcnnConfig {
                input: 6,
                hidden: 5,
                classes: 3,
            },
            ModelVariant::Split(DecoderKind::Merge),
            &mut rng,
        );
        InferenceEngine::from_network(&net, DeployedDetection::Differential, MeshStyle::Clements)
            .expect("FCNN deploys")
    }

    fn view(n: usize, seed: u64) -> CTensor {
        let mut rng = StdRng::seed_from_u64(seed);
        CTensor::new(
            Tensor::random_uniform(&[n, 6], 1.0, &mut rng),
            Tensor::random_uniform(&[n, 6], 1.0, &mut rng),
        )
    }

    #[test]
    fn coalesced_batches_match_direct_classify() {
        let x = view(37, 100_001);
        let mut direct = engine(100_000);
        let want = direct.classify(&x).expect("direct");

        let server = Server::builder()
            .max_batch(8)
            .max_wait(Duration::from_micros(100))
            .serve_engine(engine(100_000));
        let client = server.client();
        let tickets: Vec<Ticket> = (0..37)
            .map(|i| client.submit(sample_row(&x, i)).expect("admits"))
            .collect();
        let got: Vec<usize> = tickets
            .into_iter()
            .map(|t| t.wait().expect("serves").class().expect("no policy"))
            .collect();
        assert_eq!(got, want);
        let stats = server.stats();
        assert_eq!(stats.submitted, 37);
        assert_eq!(stats.served, 37);
        assert!(stats.batches >= 1);
        assert_eq!(stats.batched_samples, 37);
    }

    #[test]
    fn shutdown_drains_admitted_requests() {
        let x = view(20, 100_011);
        let mut direct = engine(100_010);
        let want = direct.classify(&x).expect("direct");

        let server = Server::builder()
            .max_batch(4)
            .max_wait(Duration::from_millis(50))
            .serve_engine(engine(100_010));
        let client = server.client();
        let tickets: Vec<Ticket> = (0..20)
            .map(|i| client.submit(sample_row(&x, i)).expect("admits"))
            .collect();
        // Shut down *before* waiting: every admitted ticket must still
        // resolve to its prediction (drain, not drop).
        let engine_back = server.shutdown();
        let got: Vec<usize> = tickets
            .into_iter()
            .map(|t| t.wait().expect("drained").class().expect("no policy"))
            .collect();
        assert_eq!(got, want);
        assert_eq!(engine_back.stats().samples, 20);

        // After shutdown, clients get a typed refusal, not a hang.
        assert!(matches!(
            client.submit(sample_row(&x, 0)),
            Err(Error::ServerClosed)
        ));
    }

    #[test]
    fn submit_validates_sample_width() {
        let server = Server::builder().serve_engine(engine(100_020));
        let client = server.client();
        assert!(matches!(
            client.submit(vec![Complex64::ONE; 3]),
            Err(Error::ShapeMismatch {
                expected: 6,
                got: 3,
                ..
            })
        ));
    }

    #[test]
    fn confidence_policy_abstains_and_counts() {
        let x = view(24, 100_031);
        // A maximally strict margin: every sample abstains.
        let server = Server::builder()
            .confidence(Confidence {
                threshold: 1.0 + 1e-9,
                top_k: 2,
            })
            .serve_engine(engine(100_030));
        let client = server.client();
        let tickets: Vec<Ticket> = (0..24)
            .map(|i| client.submit(sample_row(&x, i)).expect("admits"))
            .collect();
        let mut abstained = 0;
        for t in tickets {
            match t.wait().expect("serves") {
                Prediction::Abstain { confidence, .. } => {
                    assert!(confidence <= 1.0);
                    abstained += 1;
                }
                Prediction::Class(_) => {}
            }
        }
        assert_eq!(abstained, 24, "threshold > 1 must abstain on everything");
        assert_eq!(server.stats().abstained, 24);
    }

    #[test]
    fn wait_tracker_top_bucket_round_trips() {
        // A wait of 2^63 ns or more has nanosecond bit length 64 — the
        // last of the 65 buckets. Pin that `record` stays in bounds there
        // and `quantile` reports the true maximum back (the top bucket's
        // nominal bound saturates at u64::MAX and is capped by `max()`).
        let t = WaitTracker::default();
        t.record(Duration::MAX);
        assert_eq!(t.max(), Duration::from_nanos(u64::MAX));
        assert_eq!(t.quantile(1.0), t.max());
        assert_eq!(t.quantile(0.5), t.max(), "sole sample is every quantile");

        // Exactly 2^63 ns also lands in the top bucket; the reported
        // quantile is capped by the observed max, not the bucket bound.
        let t = WaitTracker::default();
        t.record(Duration::from_nanos(1 << 63));
        assert_eq!(t.quantile(1.0), Duration::from_nanos(1 << 63));
    }

    #[test]
    fn wait_tracker_bucket_bounds_cover_all_bit_lengths() {
        // Every possible bit length (0 for a zero wait through 64 for
        // ≥ 2^63 ns) must index inside the 65-bucket histogram, and each
        // recorded wait must round-trip through quantile(1.0) == max().
        for bits in 0..=64u32 {
            let t = WaitTracker::default();
            let nanos = if bits == 0 { 0 } else { 1u64 << (bits - 1) };
            t.record(Duration::from_nanos(nanos));
            assert_eq!(
                t.quantile(1.0),
                Duration::from_nanos(nanos),
                "bit length {bits} round-trips"
            );
        }
    }

    #[test]
    fn stats_surface_stage_reports_after_first_flush() {
        let x = view(8, 100_041);
        let server = Server::builder().max_batch(8).serve_engine(engine(100_040));
        let client = server.client();
        let tickets: Vec<Ticket> = (0..8)
            .map(|i| client.submit(sample_row(&x, i)).expect("admits"))
            .collect();
        for t in tickets {
            t.wait().expect("serves");
        }
        // The batcher publishes stage stats just after the flush that
        // resolved the tickets; allow it a bounded beat to land.
        let deadline = Instant::now() + Duration::from_secs(10);
        let stats = loop {
            let s = server.stats();
            if !s.stage_stats.is_empty() || Instant::now() > deadline {
                break s;
            }
            thread::yield_now();
        };
        assert!(
            !stats.stage_stats.is_empty(),
            "per-stage chip reports publish after the first flush"
        );
        let optical: Vec<_> = stats
            .stage_stats
            .iter()
            .filter(|s| s.chip.optical)
            .collect();
        assert!(!optical.is_empty());
        for s in &optical {
            assert!(s.chip.insertion_loss_db > 0.0);
            assert!(s.chip.latency_ps > 0.0);
            assert!(s.chip.mesh_depth > 0);
        }
    }
}
