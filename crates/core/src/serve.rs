//! Concurrent serving front end: request queue → micro-batcher → sharded
//! engine.
//!
//! The compiled kernel layer made per-window inference cheap, but a bare
//! [`InferenceEngine`] still serves one blocking `classify` call at a
//! time — one caller owns the whole engine. This module decouples
//! *request submission* from *batch formation* so many concurrent clients
//! share one engine at full batch occupancy:
//!
//! ```text
//!  Client ─submit()─▶ ┌──────────────┐    ┌───────────────┐
//!  Client ─submit()─▶ │ bounded MPSC │ ─▶ │ micro-batcher │ ─▶ sharded
//!  Client ─submit()─▶ │    queue     │    │ (max_batch /  │    engine
//!        ⋮            └──────────────┘    │   max_wait)   │    workers
//!   Ticket::wait() ◀── per-request reply ─└───────────────┘
//! ```
//!
//! * A [`Server`] owns a deployed model (its [`InferenceEngine`]) and a
//!   **bounded** request queue; the queue bound is the backpressure
//!   contract — [`Client::submit`] blocks while the queue is full and
//!   [`Client::try_submit`] returns [`Error::QueueFull`] instead.
//! * A dedicated **batcher thread** drains the queue into micro-batches,
//!   flushing on whichever comes first: the batch reaching
//!   [`ServerBuilder::max_batch`] samples, or the oldest queued request
//!   waiting [`ServerBuilder::max_wait`]. Each flush stages the samples
//!   into one contiguous buffer and drives the engine's borrowed-batch
//!   entry point ([`InferenceEngine::classify_rows`]' generic form) — no
//!   per-request tensor copies. The batcher holds a
//!   [`crate::pool::ServiceSlot`], so its thread draws from the shared
//!   `--jobs` budget like every other worker in the process.
//! * Clients hold a cheap, cloneable [`Client`] handle. `submit` returns
//!   a [`Ticket`] immediately; [`Ticket::wait`] / [`Ticket::try_wait`]
//!   resolve to the [`Prediction`] once the batch containing the sample
//!   has been served. Results are **bitwise identical** to calling
//!   [`InferenceEngine::classify`] directly, regardless of how requests
//!   were coalesced into batches — every sample runs the exact same
//!   compiled windowed kernel.
//! * [`Server::shutdown`] **drains**: every request admitted to the queue
//!   before shutdown is served and its ticket resolves; a submission
//!   racing shutdown resolves to [`Error::ServerClosed`] instead of
//!   hanging. No ticket is ever lost or answered twice.
//! * An optional [`Confidence`] policy turns low-confidence samples into
//!   [`Prediction::Abstain`] responses, with a calibrated abstention
//!   count in [`ServerStats`].
//!
//! Everything is plain threads and channels — no async runtime, matching
//! the workspace's std-only stance.

use crate::engine::{argmax, Confidence, InferenceEngine};
use crate::error::Error;
use oplix_linalg::Complex64;
use oplix_nn::ctensor::CTensor;
use oplix_nn::network::Network;
use oplix_photonics::svd_map::MeshStyle;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::thread;
use std::time::{Duration, Instant};

use crate::deploy::DeployedDetection;

/// How often the idle batcher wakes to check the shutdown flag. Purely a
/// shutdown-latency knob: while requests flow, the batcher blocks on the
/// queue (or the batch deadline) instead.
const IDLE_POLL: Duration = Duration::from_millis(1);

/// The response a served request resolves to.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Prediction {
    /// The predicted class index.
    Class(usize),
    /// The sample's confidence fell below the server's [`Confidence`]
    /// policy; the prediction is withheld but reported for calibration.
    Abstain {
        /// The class the engine would have predicted.
        best: usize,
        /// The (sub-threshold) confidence score.
        confidence: f64,
    },
}

impl Prediction {
    /// The predicted class, or `None` on an abstention.
    pub fn class(&self) -> Option<usize> {
        match *self {
            Prediction::Class(c) => Some(c),
            Prediction::Abstain { .. } => None,
        }
    }

    /// Whether the server abstained on this sample.
    pub fn is_abstain(&self) -> bool {
        matches!(self, Prediction::Abstain { .. })
    }
}

/// One queued request: the staged sample plus its reply channel and the
/// admission timestamp the wait-time stats are measured from.
struct Request {
    fields: Vec<Complex64>,
    reply: mpsc::Sender<Result<Prediction, Error>>,
    enqueued_at: Instant,
}

/// Log₂-bucketed wait-time tracker: each admitted request's queue wait
/// (admission → flush) lands in the bucket of its nanosecond count's bit
/// length, so the whole distribution is a fixed array of relaxed atomic
/// counters — recordable from the batcher's hot path without locks, and
/// cheap enough that the single-model [`Server`] and every router lane
/// carry one. Quantiles come back as the upper bound of the bucket the
/// cumulative count crosses (≤ 2× the true value, which is plenty for
/// p50/p99 SLO reporting).
pub(crate) struct WaitTracker {
    max_nanos: AtomicU64,
    buckets: [AtomicU64; 65],
}

impl Default for WaitTracker {
    fn default() -> Self {
        WaitTracker {
            max_nanos: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

impl WaitTracker {
    pub(crate) fn record(&self, wait: Duration) {
        let nanos = wait.as_nanos().min(u64::MAX as u128) as u64;
        self.max_nanos.fetch_max(nanos, Ordering::Relaxed);
        // Bucket i holds waits whose nanosecond count has bit length i,
        // i.e. [2^(i-1), 2^i); bucket 0 is a zero-length wait and the top
        // bucket (i = 64) waits of 2^63 ns and beyond.
        let bucket = (u64::BITS - nanos.leading_zeros()) as usize;
        self.buckets[bucket].fetch_add(1, Ordering::Relaxed);
    }

    /// The longest wait observed since construction.
    pub(crate) fn max(&self) -> Duration {
        Duration::from_nanos(self.max_nanos.load(Ordering::Relaxed))
    }

    /// The `q`-quantile (0 ≤ q ≤ 1) of recorded waits, as the upper bound
    /// of the bucket the cumulative count crosses; zero when nothing has
    /// been recorded yet.
    pub(crate) fn quantile(&self, q: f64) -> Duration {
        let counts: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return Duration::ZERO;
        }
        let rank = ((total as f64) * q.clamp(0.0, 1.0)).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                // Upper bound of bucket i: 2^i − 1 nanoseconds (saturating
                // on the top bucket), capped by the true observed maximum.
                let bound = if i >= 64 { u64::MAX } else { (1u64 << i) - 1 };
                return Duration::from_nanos(bound).min(self.max());
            }
        }
        self.max()
    }
}

/// Process-lifetime counters shared by the server handle, its clients and
/// the batcher thread. Also the per-lane counters of the
/// [`crate::router`] tier — the router and the single-model server
/// report through this one shape.
#[derive(Default)]
pub(crate) struct Counters {
    pub(crate) submitted: AtomicU64,
    pub(crate) rejected: AtomicU64,
    pub(crate) served: AtomicU64,
    pub(crate) abstained: AtomicU64,
    pub(crate) batches: AtomicU64,
    pub(crate) batch_fill: AtomicU64,
    /// Requests admitted but not yet answered (queued or in flight).
    pub(crate) depth: AtomicU64,
    pub(crate) waits: WaitTracker,
}

impl Counters {
    /// Records a successful admission.
    pub(crate) fn admitted(&self) {
        self.submitted.fetch_add(1, Ordering::Relaxed);
        self.depth.fetch_add(1, Ordering::Relaxed);
    }

    /// Snapshot of the counters in the public stats shape.
    pub(crate) fn snapshot(&self) -> ServerStats {
        ServerStats {
            submitted: self.submitted.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            served: self.served.load(Ordering::Relaxed),
            abstained: self.abstained.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            batched_samples: self.batch_fill.load(Ordering::Relaxed),
            queue_depth: self.depth.load(Ordering::Relaxed),
            max_wait_observed: self.waits.max(),
        }
    }
}

/// A snapshot of a [`Server`]'s counters. The router tier reports its
/// per-model lanes through this same shape (see
/// [`crate::router::ModelStats`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Requests admitted to the queue.
    pub submitted: u64,
    /// [`Client::try_submit`] calls bounced by a full queue.
    pub rejected: u64,
    /// Responses delivered (predictions, abstentions and per-sample
    /// errors alike).
    pub served: u64,
    /// Responses that were abstentions under the confidence policy.
    pub abstained: u64,
    /// Micro-batches flushed through the engine.
    pub batches: u64,
    /// Total samples across all flushed batches.
    pub batched_samples: u64,
    /// Requests admitted but not yet answered at snapshot time — the
    /// live queue depth (queued plus in-flight), the quantity the router
    /// tier weighs fair shares by.
    pub queue_depth: u64,
    /// The longest admission-to-flush wait any request has observed.
    pub max_wait_observed: Duration,
}

impl ServerStats {
    /// Mean samples per flushed micro-batch — the occupancy the batcher
    /// achieved (1.0 means no coalescing happened at all).
    pub fn mean_batch_fill(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.batched_samples as f64 / self.batches as f64
        }
    }
}

/// The batcher's flush policy plus the optional confidence policy.
struct BatchPolicy {
    max_batch: usize,
    max_wait: Duration,
    confidence: Option<Confidence>,
}

/// Configures and launches a [`Server`]; see [`Server::builder`].
#[derive(Clone, Copy, Debug)]
pub struct ServerBuilder {
    max_batch: usize,
    max_wait: Duration,
    queue_cap: usize,
    workers: Option<usize>,
    confidence: Option<Confidence>,
}

impl Default for ServerBuilder {
    fn default() -> Self {
        ServerBuilder {
            max_batch: 64,
            max_wait: Duration::from_millis(1),
            queue_cap: 1024,
            workers: None,
            confidence: None,
        }
    }
}

impl ServerBuilder {
    /// Flush a micro-batch once it holds this many samples (clamped to
    /// ≥ 1; default 64, one engine serving window).
    pub fn max_batch(mut self, n: usize) -> Self {
        self.max_batch = n.max(1);
        self
    }

    /// Flush a micro-batch once its oldest request has waited this long
    /// (default 1 ms; clamped to ≤ 1 h so deadlines never overflow).
    pub fn max_wait(mut self, d: Duration) -> Self {
        self.max_wait = d.min(Duration::from_secs(3600));
        self
    }

    /// Bound of the admission queue (clamped to ≥ 1; default 1024).
    /// [`Client::submit`] blocks while the queue holds this many pending
    /// requests; [`Client::try_submit`] returns [`Error::QueueFull`].
    pub fn queue_cap(mut self, n: usize) -> Self {
        self.queue_cap = n.max(1);
        self
    }

    /// Worker count of the backing engine (see
    /// [`InferenceEngine::set_num_workers`]; `0` = the shared
    /// [`crate::pool::jobs`] budget). When unset, the engine keeps
    /// whatever worker count it was built with.
    pub fn workers(mut self, n: usize) -> Self {
        self.workers = Some(n);
        self
    }

    /// Installs an early-exit [`Confidence`] policy: low-confidence
    /// samples resolve to [`Prediction::Abstain`] and are counted in
    /// [`ServerStats::abstained`].
    pub fn confidence(mut self, c: Confidence) -> Self {
        self.confidence = Some(c);
        self
    }

    /// Launches the server over an existing engine (the engine comes
    /// back out of [`Server::shutdown`], serving counters included).
    pub fn serve_engine(self, mut engine: InferenceEngine) -> Server {
        if let Some(w) = self.workers {
            engine.set_num_workers(w);
        }
        let input_dim = engine.input_dim();
        let (tx, rx) = mpsc::sync_channel::<Request>(self.queue_cap);
        let stop = Arc::new(AtomicBool::new(false));
        let counters = Arc::new(Counters::default());
        let policy = BatchPolicy {
            max_batch: self.max_batch,
            max_wait: self.max_wait,
            confidence: self.confidence,
        };
        let handle = {
            let stop = Arc::clone(&stop);
            let counters = Arc::clone(&counters);
            thread::Builder::new()
                .name("oplix-serve".into())
                .spawn(move || batcher(engine, rx, policy, stop, counters))
                .expect("failed to spawn the serve batcher thread")
        };
        Server {
            tx: Some(tx),
            stop,
            counters,
            input_dim,
            queue_cap: self.queue_cap,
            handle: Some(handle),
        }
    }

    /// Deploys a trained network (through the process-wide deployment
    /// cache — repeated servers over the same weights share one cached
    /// decomposition) and launches the server over it.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Deploy`] if the network cannot be mapped onto an
    /// FCNN photonic pipeline.
    pub fn serve_network(
        self,
        net: &Network,
        detection: DeployedDetection,
        style: MeshStyle,
    ) -> Result<Server, Error> {
        Ok(self.serve_engine(InferenceEngine::from_network(net, detection, style)?))
    }
}

/// A concurrent serving front end over one deployed model: a bounded
/// request queue drained by a micro-batcher thread into the sharded
/// [`InferenceEngine`]. See the [module docs](crate::serve) for the
/// queue → batcher → shards dataflow and the backpressure/shutdown
/// contract.
///
/// ```
/// use oplixnet::serve::{Prediction, Server};
/// use oplixnet::zoo::{build_fcnn, FcnnConfig, ModelVariant};
/// use oplix_photonics::decoder::DecoderKind;
/// use oplix_photonics::svd_map::MeshStyle;
/// use oplix_linalg::Complex64;
/// use rand::{rngs::StdRng, SeedableRng};
/// use std::time::Duration;
///
/// let mut rng = StdRng::seed_from_u64(1);
/// let variant = ModelVariant::Split(DecoderKind::Merge);
/// let net = build_fcnn(&FcnnConfig { input: 6, hidden: 5, classes: 2 }, variant, &mut rng);
/// let server = Server::builder()
///     .max_batch(16)
///     .max_wait(Duration::from_micros(200))
///     .queue_cap(64)
///     .serve_network(&net, variant.detection(), MeshStyle::Clements)
///     .expect("FCNN deploys");
///
/// let client = server.client();
/// let ticket = client.submit(vec![Complex64::ONE; 6]).expect("queue admits");
/// assert!(matches!(ticket.wait(), Ok(Prediction::Class(_))));
///
/// let engine = server.shutdown(); // drains, then hands the engine back
/// assert_eq!(engine.stats().samples, 1);
/// ```
pub struct Server {
    tx: Option<mpsc::SyncSender<Request>>,
    stop: Arc<AtomicBool>,
    counters: Arc<Counters>,
    input_dim: usize,
    queue_cap: usize,
    handle: Option<thread::JoinHandle<InferenceEngine>>,
}

impl Server {
    /// Starts configuring a server; launch it with
    /// [`ServerBuilder::serve_engine`] or [`ServerBuilder::serve_network`].
    pub fn builder() -> ServerBuilder {
        ServerBuilder::default()
    }

    /// A new cloneable client handle onto this server's queue.
    pub fn client(&self) -> Client {
        Client {
            tx: self
                .tx
                .as_ref()
                .expect("server handle outlives shutdown")
                .clone(),
            stop: Arc::clone(&self.stop),
            counters: Arc::clone(&self.counters),
            input_dim: self.input_dim,
            queue_cap: self.queue_cap,
        }
    }

    /// The complex fan-in every submitted sample must have.
    pub fn input_dim(&self) -> usize {
        self.input_dim
    }

    /// A snapshot of the serving counters.
    pub fn stats(&self) -> ServerStats {
        self.counters.snapshot()
    }

    /// Shuts the server down and returns its engine: admission closes,
    /// every request already in the queue is served (their tickets
    /// resolve normally), and the batcher thread exits. Submissions
    /// racing the shutdown resolve to [`Error::ServerClosed`]; none hang.
    pub fn shutdown(mut self) -> InferenceEngine {
        self.shutdown_inner()
            .expect("first shutdown of a live server")
    }

    fn shutdown_inner(&mut self) -> Option<InferenceEngine> {
        self.stop.store(true, Ordering::SeqCst);
        drop(self.tx.take());
        self.handle
            .take()
            .map(|h| h.join().expect("serve batcher thread panicked"))
    }
}

impl Drop for Server {
    /// Dropping the handle shuts the server down (draining, like
    /// [`Server::shutdown`]) and discards the engine.
    fn drop(&mut self) {
        let _ = self.shutdown_inner();
    }
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("input_dim", &self.input_dim)
            .field("queue_cap", &self.queue_cap)
            .field("stats", &self.stats())
            .finish()
    }
}

/// A cheap, cloneable handle for submitting samples to a [`Server`].
/// Clones share the server's bounded queue; each clone can submit from
/// its own thread.
///
/// ```
/// use oplixnet::serve::Server;
/// use oplixnet::zoo::{build_fcnn, FcnnConfig, ModelVariant};
/// use oplix_photonics::decoder::DecoderKind;
/// use oplix_photonics::svd_map::MeshStyle;
/// use oplix_linalg::Complex64;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(2);
/// let variant = ModelVariant::Split(DecoderKind::Merge);
/// let net = build_fcnn(&FcnnConfig { input: 4, hidden: 4, classes: 2 }, variant, &mut rng);
/// let server = Server::builder()
///     .serve_network(&net, variant.detection(), MeshStyle::Clements)
///     .expect("FCNN deploys");
///
/// // Submission is non-blocking (while the queue has room) and returns
/// // a ticket immediately; clones are independent handles.
/// let client = server.client();
/// let other = client.clone();
/// let a = client.submit(vec![Complex64::ONE; 4]).expect("admits");
/// let b = other.submit(vec![Complex64::i(); 4]).expect("admits");
/// assert!(a.wait().is_ok() && b.wait().is_ok());
/// ```
#[derive(Clone)]
pub struct Client {
    tx: mpsc::SyncSender<Request>,
    stop: Arc<AtomicBool>,
    counters: Arc<Counters>,
    input_dim: usize,
    queue_cap: usize,
}

impl Client {
    /// The complex fan-in every submitted sample must have.
    pub fn input_dim(&self) -> usize {
        self.input_dim
    }

    fn request(&self, fields: Vec<Complex64>) -> Result<(Request, Ticket), Error> {
        if fields.len() != self.input_dim {
            return Err(Error::ShapeMismatch {
                expected: self.input_dim,
                got: fields.len(),
                what: "sample width",
            });
        }
        if self.stop.load(Ordering::SeqCst) {
            return Err(Error::ServerClosed);
        }
        let (reply, rx) = mpsc::channel();
        Ok((
            Request {
                fields,
                reply,
                enqueued_at: Instant::now(),
            },
            Ticket { rx, done: None },
        ))
    }

    /// Submits one sample, blocking while the queue is at capacity
    /// (backpressure). Returns a [`Ticket`] that resolves once the
    /// micro-batch containing the sample has been served.
    ///
    /// # Errors
    ///
    /// Returns [`Error::ShapeMismatch`] if the sample width differs from
    /// [`Client::input_dim`], and [`Error::ServerClosed`] if the server
    /// has shut down.
    pub fn submit(&self, fields: Vec<Complex64>) -> Result<Ticket, Error> {
        let (request, ticket) = self.request(fields)?;
        match self.tx.send(request) {
            Ok(()) => {
                self.counters.admitted();
                Ok(ticket)
            }
            Err(_) => Err(Error::ServerClosed),
        }
    }

    /// Non-blocking [`Client::submit`]: a full queue surfaces as
    /// [`Error::QueueFull`] instead of blocking, so latency-sensitive
    /// callers can shed load.
    ///
    /// # Errors
    ///
    /// [`Error::QueueFull`] on backpressure, plus the
    /// [`Client::submit`] conditions.
    pub fn try_submit(&self, fields: Vec<Complex64>) -> Result<Ticket, Error> {
        let (request, ticket) = self.request(fields)?;
        match self.tx.try_send(request) {
            Ok(()) => {
                self.counters.admitted();
                Ok(ticket)
            }
            Err(mpsc::TrySendError::Full(_)) => {
                self.counters.rejected.fetch_add(1, Ordering::Relaxed);
                Err(Error::QueueFull {
                    capacity: self.queue_cap,
                })
            }
            Err(mpsc::TrySendError::Disconnected(_)) => Err(Error::ServerClosed),
        }
    }
}

impl std::fmt::Debug for Client {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Client")
            .field("input_dim", &self.input_dim)
            .field("queue_cap", &self.queue_cap)
            .finish()
    }
}

/// A pending response to one submitted sample. [`Ticket::wait`] blocks
/// until the micro-batch containing the sample has been served;
/// [`Ticket::try_wait`] polls.
///
/// ```
/// use oplixnet::serve::{Prediction, Server};
/// use oplixnet::zoo::{build_fcnn, FcnnConfig, ModelVariant};
/// use oplix_photonics::decoder::DecoderKind;
/// use oplix_photonics::svd_map::MeshStyle;
/// use oplix_linalg::Complex64;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(3);
/// let variant = ModelVariant::Split(DecoderKind::Merge);
/// let net = build_fcnn(&FcnnConfig { input: 4, hidden: 4, classes: 2 }, variant, &mut rng);
/// let server = Server::builder()
///     .serve_network(&net, variant.detection(), MeshStyle::Clements)
///     .expect("FCNN deploys");
///
/// let mut ticket = server.client().submit(vec![Complex64::ONE; 4]).expect("admits");
/// // Poll until the batcher flushes, then read the prediction.
/// let prediction = loop {
///     if let Some(done) = ticket.try_wait() {
///         break done.expect("sample is finite");
///     }
///     std::thread::yield_now();
/// };
/// assert!(matches!(prediction, Prediction::Class(_)));
/// ```
#[derive(Debug)]
pub struct Ticket {
    rx: mpsc::Receiver<Result<Prediction, Error>>,
    done: Option<Result<Prediction, Error>>,
}

impl Ticket {
    /// Blocks until the sample's micro-batch has been served and returns
    /// the prediction. A server that shut down without serving the
    /// request (a submission racing [`Server::shutdown`]) surfaces as
    /// [`Error::ServerClosed`] — tickets never hang.
    ///
    /// # Errors
    ///
    /// [`Error::NonFiniteLogits`] if the sample poisoned detection,
    /// [`Error::ServerClosed`] as above.
    pub fn wait(mut self) -> Result<Prediction, Error> {
        if let Some(done) = self.done.take() {
            return done;
        }
        self.rx.recv().unwrap_or(Err(Error::ServerClosed))
    }

    /// Non-blocking poll: `None` while the sample is still queued or in
    /// flight, `Some(result)` once served (repeat calls keep returning
    /// the same result).
    pub fn try_wait(&mut self) -> Option<Result<Prediction, Error>> {
        if self.done.is_none() {
            match self.rx.try_recv() {
                Ok(done) => self.done = Some(done),
                Err(mpsc::TryRecvError::Empty) => {}
                Err(mpsc::TryRecvError::Disconnected) => self.done = Some(Err(Error::ServerClosed)),
            }
        }
        self.done.clone()
    }
}

/// Converts sample `row` of a complex view — flat `[N, D]` or image
/// `[N, C, H, W]` (CNN workloads) — into the staged sample a
/// [`Client::submit`] call expects — the exact conversion the engine's
/// tensor paths apply, so a submitted row is bitwise the sample
/// [`InferenceEngine::classify`] would have served.
pub fn sample_row(inputs: &CTensor, row: usize) -> Vec<Complex64> {
    let d: usize = inputs.shape()[1..].iter().product();
    let (re, im) = (inputs.re.as_slice(), inputs.im.as_slice());
    re[row * d..(row + 1) * d]
        .iter()
        .zip(&im[row * d..(row + 1) * d])
        .map(|(&a, &b)| Complex64::new(a as f64, b as f64))
        .collect()
}

/// Turns one logit row into the response under the optional confidence
/// policy. Shared with the router tier so routed and direct serving apply
/// one abstention rule.
pub(crate) fn decide(confidence: Option<Confidence>, logits: &[f64]) -> Prediction {
    match confidence {
        None => Prediction::Class(argmax(logits)),
        Some(c) => {
            let (best, score) = c.score(logits);
            if score >= c.threshold {
                Prediction::Class(best)
            } else {
                Prediction::Abstain {
                    best,
                    confidence: score,
                }
            }
        }
    }
}

/// The batcher thread body: form micro-batches (flush on `max_batch` or
/// `max_wait`, whichever first), serve them through the engine's
/// borrowed-batch path, reply per request. On shutdown, drain the queue
/// to empty before exiting so no admitted ticket is lost.
fn batcher(
    mut engine: InferenceEngine,
    rx: mpsc::Receiver<Request>,
    policy: BatchPolicy,
    stop: Arc<AtomicBool>,
    counters: Arc<Counters>,
) -> InferenceEngine {
    // The batcher is a resident service thread: claim one slot of the
    // shared worker budget so engines + grids + servers stay ≈ `--jobs`.
    let _slot = crate::pool::reserve_service_slot();
    let mut pending: Vec<Request> = Vec::with_capacity(policy.max_batch);
    let mut rows: Vec<Complex64> = Vec::new();
    loop {
        // Admit the first request of the next batch.
        let first = loop {
            if stop.load(Ordering::SeqCst) {
                // Draining: serve whatever is still queued, then exit.
                break rx.try_recv().ok();
            }
            match rx.recv_timeout(IDLE_POLL) {
                Ok(r) => break Some(r),
                Err(mpsc::RecvTimeoutError::Timeout) => continue,
                Err(mpsc::RecvTimeoutError::Disconnected) => break None,
            }
        };
        let Some(first) = first else { break };
        pending.push(first);

        // Coalesce until the batch fills or the oldest request's
        // deadline passes (during a drain: until the queue is empty).
        // Under load, stragglers are collected with non-blocking drains
        // separated by scheduler yields: parking would make every
        // straggler's `submit` pay a futex wake, turning the coalescing
        // window into one context switch per request. The yield spin is
        // bounded, though — past `SPIN_WAIT` the batcher parks in timed
        // waits for the rest of the deadline, so a long `max_wait` over a
        // trickle of traffic idles the core instead of burning it.
        const SPIN_WAIT: Duration = Duration::from_micros(256);
        let deadline = Instant::now() + policy.max_wait;
        let spin_until = Instant::now() + SPIN_WAIT.min(policy.max_wait);
        loop {
            while pending.len() < policy.max_batch {
                match rx.try_recv() {
                    Ok(r) => pending.push(r),
                    Err(_) => break,
                }
            }
            if pending.len() >= policy.max_batch || stop.load(Ordering::SeqCst) {
                break;
            }
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            if now < spin_until {
                thread::yield_now();
            } else {
                // Park for the remaining window (capped so a shutdown is
                // still noticed promptly); a straggler's send wakes us.
                let nap = (deadline - now).min(IDLE_POLL);
                match rx.recv_timeout(nap) {
                    Ok(r) => pending.push(r),
                    Err(mpsc::RecvTimeoutError::Timeout) => {}
                    Err(mpsc::RecvTimeoutError::Disconnected) => break,
                }
            }
        }

        serve_batch(&mut engine, &policy, &mut pending, &mut rows, &counters);
    }
    engine
}

/// Serves one micro-batch and replies to every request in it. A batch
/// poisoned by one sample (non-finite logits) falls back to serving each
/// request individually, so the offending sample gets its error and the
/// rest still get their predictions.
fn serve_batch(
    engine: &mut InferenceEngine,
    policy: &BatchPolicy,
    pending: &mut Vec<Request>,
    rows: &mut Vec<Complex64>,
    counters: &Counters,
) {
    counters.batches.fetch_add(1, Ordering::Relaxed);
    counters
        .batch_fill
        .fetch_add(pending.len() as u64, Ordering::Relaxed);
    rows.clear();
    for request in pending.iter() {
        counters.waits.record(request.enqueued_at.elapsed());
        rows.extend_from_slice(&request.fields);
    }
    let confidence = policy.confidence;
    let emit = move |logits: &[f64]| decide(confidence, logits);
    match engine.serve_rows(rows, &emit) {
        Ok(predictions) => {
            for (request, prediction) in pending.drain(..).zip(predictions) {
                respond(counters, &request, Ok(prediction));
            }
        }
        Err(_) => {
            // Isolate the poisoned sample(s): per-request error indices
            // are the request's own (single-sample) batch, i.e. 0.
            for request in pending.drain(..) {
                let outcome = engine
                    .serve_rows(&request.fields, &emit)
                    .map(|mut v| v.remove(0));
                respond(counters, &request, outcome);
            }
        }
    }
}

fn respond(counters: &Counters, request: &Request, outcome: Result<Prediction, Error>) {
    counters.served.fetch_add(1, Ordering::Relaxed);
    counters.depth.fetch_sub(1, Ordering::Relaxed);
    if matches!(outcome, Ok(Prediction::Abstain { .. })) {
        counters.abstained.fetch_add(1, Ordering::Relaxed);
    }
    // A dropped ticket just means nobody is listening; serving continues.
    let _ = request.reply.send(outcome);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zoo::{build_fcnn, FcnnConfig, ModelVariant};
    use oplix_nn::tensor::Tensor;
    use oplix_photonics::decoder::DecoderKind;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn engine(seed: u64) -> InferenceEngine {
        let mut rng = StdRng::seed_from_u64(seed);
        let net = build_fcnn(
            &FcnnConfig {
                input: 6,
                hidden: 5,
                classes: 3,
            },
            ModelVariant::Split(DecoderKind::Merge),
            &mut rng,
        );
        InferenceEngine::from_network(&net, DeployedDetection::Differential, MeshStyle::Clements)
            .expect("FCNN deploys")
    }

    fn view(n: usize, seed: u64) -> CTensor {
        let mut rng = StdRng::seed_from_u64(seed);
        CTensor::new(
            Tensor::random_uniform(&[n, 6], 1.0, &mut rng),
            Tensor::random_uniform(&[n, 6], 1.0, &mut rng),
        )
    }

    #[test]
    fn coalesced_batches_match_direct_classify() {
        let x = view(37, 100_001);
        let mut direct = engine(100_000);
        let want = direct.classify(&x).expect("direct");

        let server = Server::builder()
            .max_batch(8)
            .max_wait(Duration::from_micros(100))
            .serve_engine(engine(100_000));
        let client = server.client();
        let tickets: Vec<Ticket> = (0..37)
            .map(|i| client.submit(sample_row(&x, i)).expect("admits"))
            .collect();
        let got: Vec<usize> = tickets
            .into_iter()
            .map(|t| t.wait().expect("serves").class().expect("no policy"))
            .collect();
        assert_eq!(got, want);
        let stats = server.stats();
        assert_eq!(stats.submitted, 37);
        assert_eq!(stats.served, 37);
        assert!(stats.batches >= 1);
        assert_eq!(stats.batched_samples, 37);
    }

    #[test]
    fn shutdown_drains_admitted_requests() {
        let x = view(20, 100_011);
        let mut direct = engine(100_010);
        let want = direct.classify(&x).expect("direct");

        let server = Server::builder()
            .max_batch(4)
            .max_wait(Duration::from_millis(50))
            .serve_engine(engine(100_010));
        let client = server.client();
        let tickets: Vec<Ticket> = (0..20)
            .map(|i| client.submit(sample_row(&x, i)).expect("admits"))
            .collect();
        // Shut down *before* waiting: every admitted ticket must still
        // resolve to its prediction (drain, not drop).
        let engine_back = server.shutdown();
        let got: Vec<usize> = tickets
            .into_iter()
            .map(|t| t.wait().expect("drained").class().expect("no policy"))
            .collect();
        assert_eq!(got, want);
        assert_eq!(engine_back.stats().samples, 20);

        // After shutdown, clients get a typed refusal, not a hang.
        assert!(matches!(
            client.submit(sample_row(&x, 0)),
            Err(Error::ServerClosed)
        ));
    }

    #[test]
    fn submit_validates_sample_width() {
        let server = Server::builder().serve_engine(engine(100_020));
        let client = server.client();
        assert!(matches!(
            client.submit(vec![Complex64::ONE; 3]),
            Err(Error::ShapeMismatch {
                expected: 6,
                got: 3,
                ..
            })
        ));
    }

    #[test]
    fn confidence_policy_abstains_and_counts() {
        let x = view(24, 100_031);
        // A maximally strict margin: every sample abstains.
        let server = Server::builder()
            .confidence(Confidence {
                threshold: 1.0 + 1e-9,
                top_k: 2,
            })
            .serve_engine(engine(100_030));
        let client = server.client();
        let tickets: Vec<Ticket> = (0..24)
            .map(|i| client.submit(sample_row(&x, i)).expect("admits"))
            .collect();
        let mut abstained = 0;
        for t in tickets {
            match t.wait().expect("serves") {
                Prediction::Abstain { confidence, .. } => {
                    assert!(confidence <= 1.0);
                    abstained += 1;
                }
                Prediction::Class(_) => {}
            }
        }
        assert_eq!(abstained, 24, "threshold > 1 must abstain on everything");
        assert_eq!(server.stats().abstained, 24);
    }
}
