//! The OplixNet end-to-end workflow (paper Fig. 2):
//!
//! ```text
//! real dataset → data assigning → optical complex encoder →
//! split ONN (SCVNN) ⇄ CVNN mutual learning → phase mapping → deploy
//! ```
//!
//! [`OplixNetBuilder`] configures an FCNN workload and assembles the
//! standard stage [`Pipeline`] (`Assign → Train → Deploy → Evaluate`, see
//! [`crate::stage`]); [`OplixNetPipeline::run`] executes it, returning an
//! [`OplixNetOutcome`] with the trained network, the hardware-verified
//! accuracies, and a reusable [`InferenceEngine`] for further queries.
//! Every failure mode — bad dataset geometry, undeployable body, shape
//! mismatches — is a typed [`Error`], not a panic.

use crate::deploy::DeployedFcnn;
use crate::engine::InferenceEngine;
use crate::error::Error;
use crate::experiments::TrainSetup;
use crate::spec::{fcnn_orig, ModelSpec};
use crate::stage::{
    AssignStage, AssignedData, DatasetPair, DeployStage, MutualLearning, Pipeline, TrainStage,
};
use crate::zoo::{build_fcnn, FcnnConfig, ModelVariant};
use oplix_datasets::assign::AssignmentKind;
use oplix_datasets::synth::RealDataset;
use oplix_photonics::decoder::DecoderKind;
use oplix_photonics::svd_map::MeshStyle;
use rand::rngs::StdRng;

/// Builder for an OplixNet FCNN pipeline.
#[derive(Clone, Debug)]
pub struct OplixNetBuilder {
    assignment: AssignmentKind,
    decoder: DecoderKind,
    hidden: usize,
    mutual_learning: bool,
    alpha: f32,
    setup: TrainSetup,
    mesh_style: MeshStyle,
    seed: u64,
}

impl Default for OplixNetBuilder {
    /// The paper's defaults; identical to [`OplixNetBuilder::new`].
    fn default() -> Self {
        OplixNetBuilder {
            assignment: AssignmentKind::SpatialInterlace,
            decoder: DecoderKind::Merge,
            hidden: 32,
            mutual_learning: true,
            alpha: 1.0,
            setup: TrainSetup {
                epochs: 8,
                batch: 32,
                lr: 0.05,
                momentum: 0.9,
                weight_decay: 1e-4,
            },
            mesh_style: MeshStyle::Clements,
            seed: 7,
        }
    }
}

impl OplixNetBuilder {
    /// Starts from the paper's defaults (spatial interlace, merge decoder,
    /// mutual learning with α = 1).
    pub fn new() -> Self {
        Self::default()
    }

    /// Selects the real-to-complex assignment scheme.
    pub fn assignment(mut self, a: AssignmentKind) -> Self {
        self.assignment = a;
        self
    }

    /// Selects the output decoder.
    pub fn decoder(mut self, d: DecoderKind) -> Self {
        self.decoder = d;
        self
    }

    /// Sets the hidden width of the split FCNN.
    pub fn hidden(mut self, h: usize) -> Self {
        self.hidden = h;
        self
    }

    /// Enables/disables SCVNN–CVNN mutual learning.
    pub fn mutual_learning(mut self, on: bool) -> Self {
        self.mutual_learning = on;
        self
    }

    /// Sets the distillation mixing factor α.
    pub fn alpha(mut self, alpha: f32) -> Self {
        self.alpha = alpha;
        self
    }

    /// Overrides the training hyper-parameters.
    pub fn train_setup(mut self, setup: TrainSetup) -> Self {
        self.setup = setup;
        self
    }

    /// Selects the mesh decomposition used at deployment.
    pub fn mesh_style(mut self, style: MeshStyle) -> Self {
        self.mesh_style = style;
        self
    }

    /// Sets the RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Assembles the pipeline for a dataset pair. Geometry constraints are
    /// checked when the pipeline runs, so this never fails or panics.
    pub fn build(self, train: &RealDataset, test: &RealDataset) -> OplixNetPipeline {
        OplixNetPipeline {
            cfg: self,
            data: DatasetPair::new(train.clone(), test.clone()),
        }
    }

    /// The four configured stages as a generic [`Pipeline`], for callers
    /// that want to swap a stage before running.
    pub fn stages(&self) -> Pipeline {
        let mut assign = AssignStage::flat(self.assignment);
        if self.mutual_learning {
            assign = assign.with_teacher_view();
        }

        let variant = ModelVariant::Split(self.decoder);
        let hidden = self.hidden;
        let student = Box::new(move |data: &AssignedData, rng: &mut StdRng| {
            Ok(build_fcnn(
                &FcnnConfig {
                    input: data.assigned_features(),
                    hidden,
                    classes: data.classes,
                },
                variant,
                rng,
            ))
        });
        let mut train = TrainStage::new(student, self.setup, self.seed);
        if self.mutual_learning {
            let teacher_hidden = 2 * self.hidden;
            train = train.with_mutual(MutualLearning {
                teacher: Box::new(move |data: &AssignedData, rng: &mut StdRng| {
                    Ok(build_fcnn(
                        &FcnnConfig {
                            input: data.raw_features(),
                            hidden: teacher_hidden,
                            classes: data.classes,
                        },
                        ModelVariant::ConventionalOnn,
                        rng,
                    ))
                }),
                alpha: self.alpha,
                temperature: 1.0,
            });
        }

        let deploy = DeployStage::new(variant.detection()).mesh_style(self.mesh_style);
        Pipeline::standard(assign, train, deploy)
    }
}

/// An assembled OplixNet pipeline, ready to run.
#[derive(Clone, Debug)]
pub struct OplixNetPipeline {
    cfg: OplixNetBuilder,
    data: DatasetPair,
}

/// Everything the pipeline produces.
///
/// Not `Clone`: [`Network`](oplix_nn::network::Network) holds its head as
/// a trait object without clone support, and cloning mesh state by
/// accident would be an expensive footgun. The cheap scalar parts are
/// available as a `Copy` [`OutcomeSummary`] via
/// [`OplixNetOutcome::summary`]; the engine (and the deployed meshes
/// inside it) can be cloned explicitly.
#[derive(Debug)]
pub struct OplixNetOutcome {
    /// The trained split network (software form).
    pub network: oplix_nn::network::Network,
    /// Test accuracy of the split network.
    pub accuracy: f64,
    /// Test accuracy of the deployed (field-level) hardware.
    pub deployed_accuracy: f64,
    /// Reusable batched inference engine over the deployed hardware.
    pub engine: InferenceEngine,
    /// Paper-scale spec of the original ONN FCNN (area reference).
    pub orig_spec: ModelSpec,
    /// MZIs used by the deployed split pipeline (training scale).
    pub deployed_mzis: u64,
}

/// The scalar facts of an [`OplixNetOutcome`], cheap to copy around.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct OutcomeSummary {
    /// Software test accuracy.
    pub accuracy: f64,
    /// Deployed hardware test accuracy.
    pub deployed_accuracy: f64,
    /// `|accuracy − deployed_accuracy|`.
    pub hardware_gap: f64,
    /// MZIs of the deployed pipeline.
    pub deployed_mzis: u64,
}

impl OplixNetOutcome {
    /// Agreement between software and hardware accuracy.
    pub fn hardware_gap(&self) -> f64 {
        (self.accuracy - self.deployed_accuracy).abs()
    }

    /// The deployed photonic pipeline the engine serves.
    pub fn deployed(&self) -> &DeployedFcnn {
        self.engine.deployed()
    }

    /// The cheap scalar parts, as a `Copy` value.
    pub fn summary(&self) -> OutcomeSummary {
        OutcomeSummary {
            accuracy: self.accuracy,
            deployed_accuracy: self.deployed_accuracy,
            hardware_gap: self.hardware_gap(),
            deployed_mzis: self.deployed_mzis,
        }
    }
}

impl OplixNetPipeline {
    /// Trains (optionally with mutual learning), deploys onto MZI meshes,
    /// and verifies on hardware through the four pipeline stages.
    ///
    /// # Errors
    ///
    /// Returns a typed [`Error`] if the assignment cannot be applied to
    /// the dataset geometry, the trained body is undeployable, or the
    /// hardware evaluation is inconsistent with the mesh geometry.
    pub fn run(&self) -> Result<OplixNetOutcome, Error> {
        let evaluation = self.cfg.stages().run(self.data.clone())?;
        let deployed_mzis = evaluation.engine.deployed().device_count().mzis;
        Ok(OplixNetOutcome {
            network: evaluation.network,
            accuracy: evaluation.software_accuracy,
            deployed_accuracy: evaluation.hardware_accuracy,
            engine: evaluation.engine,
            orig_spec: fcnn_orig(),
            deployed_mzis,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oplix_datasets::synth::{digits, SynthConfig};

    fn quick_data() -> (RealDataset, RealDataset) {
        let cfg = SynthConfig {
            height: 8,
            width: 8,
            samples: 240,
            ..Default::default()
        };
        let train = digits(&cfg);
        let test = digits(&SynthConfig {
            samples: 120,
            seed: 1,
            ..cfg
        });
        (train, test)
    }

    #[test]
    fn pipeline_end_to_end_merge_decoder() {
        let (train, test) = quick_data();
        let outcome = OplixNetBuilder::new()
            .hidden(16)
            .mutual_learning(false)
            .train_setup(TrainSetup {
                epochs: 12,
                batch: 32,
                lr: 0.05,
                momentum: 0.9,
                weight_decay: 1e-4,
            })
            .build(&train, &test)
            .run()
            .expect("pipeline runs");
        assert!(outcome.accuracy > 0.2, "accuracy {}", outcome.accuracy);
        // Hardware must agree with software almost exactly (the deployment
        // is numerically exact up to f32->f64 and SVD round-off).
        assert!(
            outcome.hardware_gap() < 0.05,
            "software {} vs hardware {}",
            outcome.accuracy,
            outcome.deployed_accuracy
        );
        assert!(outcome.deployed_mzis > 0);
        let summary = outcome.summary();
        assert_eq!(summary.deployed_mzis, outcome.deployed_mzis);
        assert_eq!(summary.hardware_gap, outcome.hardware_gap());
    }

    #[test]
    fn pipeline_with_mutual_learning_runs() {
        let (train, test) = quick_data();
        let outcome = OplixNetBuilder::new()
            .hidden(16)
            .mutual_learning(true)
            .alpha(1.0)
            .train_setup(TrainSetup {
                epochs: 12,
                batch: 32,
                lr: 0.05,
                momentum: 0.9,
                weight_decay: 1e-4,
            })
            .seed(3)
            .build(&train, &test)
            .run()
            .expect("pipeline runs");
        assert!(outcome.accuracy > 0.2);
    }

    #[test]
    fn geometry_errors_surface_as_values() {
        // 7-pixel-high images cannot be spatially interlaced.
        let cfg = SynthConfig {
            height: 7,
            width: 8,
            samples: 20,
            ..Default::default()
        };
        let train = digits(&cfg);
        let test = digits(&SynthConfig { seed: 1, ..cfg });
        let err = OplixNetBuilder::new()
            .build(&train, &test)
            .run()
            .expect_err("odd height must be a typed error");
        assert!(matches!(err, Error::Assign(_)), "{err:?}");
    }

    #[test]
    fn default_and_new_agree() {
        let a = format!("{:?}", OplixNetBuilder::new());
        let b = format!("{:?}", OplixNetBuilder::default());
        assert_eq!(a, b);
    }
}
