//! The OplixNet end-to-end workflow (paper Fig. 2):
//!
//! ```text
//! real dataset → data assigning → optical complex encoder →
//! split ONN (SCVNN) ⇄ CVNN mutual learning → phase mapping → deploy
//! ```
//!
//! [`OplixNetBuilder`] assembles the whole pipeline for an FCNN workload;
//! [`OplixNetPipeline::run`] trains (optionally with mutual learning),
//! deploys onto MZI meshes and reports accuracy plus the area ledger. This
//! is the "user-facing" API the examples exercise; the experiment runners
//! in [`crate::experiments`] use the pieces directly.

use crate::deploy::{DeployedDetection, DeployedFcnn};
use crate::experiments::TrainSetup;
use crate::spec::{fcnn_orig, ModelSpec};
use crate::zoo::{build_fcnn, FcnnConfig, ModelVariant};
use oplix_datasets::assign::AssignmentKind;
use oplix_datasets::synth::RealDataset;
use oplix_nn::mutual::{mutual_fit, MutualConfig};
use oplix_nn::network::Network;
use oplix_nn::optim::Sgd;
use oplix_nn::trainer::{evaluate, fit};
use oplix_photonics::decoder::DecoderKind;
use oplix_photonics::svd_map::MeshStyle;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Builder for an OplixNet FCNN pipeline.
#[derive(Clone, Debug)]
pub struct OplixNetBuilder {
    assignment: AssignmentKind,
    decoder: DecoderKind,
    hidden: usize,
    mutual_learning: bool,
    alpha: f32,
    setup: TrainSetup,
    mesh_style: MeshStyle,
    seed: u64,
}

impl Default for OplixNetBuilder {
    fn default() -> Self {
        OplixNetBuilder {
            assignment: AssignmentKind::SpatialInterlace,
            decoder: DecoderKind::Merge,
            hidden: 32,
            mutual_learning: true,
            alpha: 1.0,
            setup: TrainSetup {
                epochs: 8,
                batch: 32,
                lr: 0.05,
                momentum: 0.9,
                weight_decay: 1e-4,
            },
            mesh_style: MeshStyle::Clements,
            seed: 7,
        }
    }
}

impl OplixNetBuilder {
    /// Starts from the paper's defaults (spatial interlace, merge decoder,
    /// mutual learning with α = 1).
    pub fn new() -> Self {
        Self::default()
    }

    /// Selects the real-to-complex assignment scheme.
    pub fn assignment(mut self, a: AssignmentKind) -> Self {
        self.assignment = a;
        self
    }

    /// Selects the output decoder.
    pub fn decoder(mut self, d: DecoderKind) -> Self {
        self.decoder = d;
        self
    }

    /// Sets the hidden width of the split FCNN.
    pub fn hidden(mut self, h: usize) -> Self {
        self.hidden = h;
        self
    }

    /// Enables/disables SCVNN–CVNN mutual learning.
    pub fn mutual_learning(mut self, on: bool) -> Self {
        self.mutual_learning = on;
        self
    }

    /// Sets the distillation mixing factor α.
    pub fn alpha(mut self, alpha: f32) -> Self {
        self.alpha = alpha;
        self
    }

    /// Overrides the training hyper-parameters.
    pub fn train_setup(mut self, setup: TrainSetup) -> Self {
        self.setup = setup;
        self
    }

    /// Selects the mesh decomposition used at deployment.
    pub fn mesh_style(mut self, style: MeshStyle) -> Self {
        self.mesh_style = style;
        self
    }

    /// Sets the RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Assembles the pipeline for a dataset pair.
    ///
    /// # Panics
    ///
    /// Panics if the assignment cannot be applied to the dataset geometry
    /// (e.g. channel remapping on single-channel digits).
    pub fn build(self, train: &RealDataset, test: &RealDataset) -> OplixNetPipeline {
        let (c, h, w) = train.image_shape();
        let (oc, oh, ow) = self.assignment.output_shape(c, h, w);
        let split_input = oc * oh * ow;
        let conv_input = c * h * w;
        OplixNetPipeline {
            cfg: self,
            split_input,
            conv_input,
            classes: train.num_classes,
            train: train.clone(),
            test: test.clone(),
        }
    }
}

/// An assembled OplixNet pipeline, ready to run.
#[derive(Clone, Debug)]
pub struct OplixNetPipeline {
    cfg: OplixNetBuilder,
    split_input: usize,
    conv_input: usize,
    classes: usize,
    train: RealDataset,
    test: RealDataset,
}

/// Everything the pipeline produces.
pub struct OplixNetOutcome {
    /// The trained split network (software form).
    pub network: Network,
    /// Test accuracy of the split network.
    pub accuracy: f64,
    /// Test accuracy of the deployed (field-level) hardware.
    pub deployed_accuracy: f64,
    /// The deployed photonic pipeline.
    pub deployed: DeployedFcnn,
    /// Paper-scale spec of the original ONN FCNN (area reference).
    pub orig_spec: ModelSpec,
    /// MZIs used by the deployed split pipeline (training scale).
    pub deployed_mzis: u64,
}

impl OplixNetOutcome {
    /// Agreement between software and hardware accuracy.
    pub fn hardware_gap(&self) -> f64 {
        (self.accuracy - self.deployed_accuracy).abs()
    }
}

impl OplixNetPipeline {
    /// Trains, optionally with mutual learning, then deploys and verifies
    /// on hardware.
    pub fn run(&self) -> OplixNetOutcome {
        let cfg = &self.cfg;
        let split_train = cfg.assignment.apply_dataset_flat(&self.train);
        let split_test = cfg.assignment.apply_dataset_flat(&self.test);

        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut student = build_fcnn(
            &FcnnConfig {
                input: self.split_input,
                hidden: cfg.hidden,
                classes: self.classes,
            },
            ModelVariant::Split(cfg.decoder),
            &mut rng,
        );

        let accuracy = if cfg.mutual_learning {
            let conv_train = AssignmentKind::Conventional.apply_dataset_flat(&self.train);
            let mut teacher = build_fcnn(
                &FcnnConfig {
                    input: self.conv_input,
                    hidden: cfg.hidden * 2,
                    classes: self.classes,
                },
                ModelVariant::ConventionalOnn,
                &mut rng,
            );
            let ml = MutualConfig {
                alpha: cfg.alpha,
                temperature: 1.0,
                batch_size: cfg.setup.batch,
            };
            let mut opt_s = Sgd::with_momentum(cfg.setup.lr, cfg.setup.momentum, cfg.setup.weight_decay);
            let mut opt_t = Sgd::with_momentum(cfg.setup.lr, cfg.setup.momentum, cfg.setup.weight_decay);
            opt_s.clip = Some(1.0);
            opt_t.clip = Some(1.0);
            mutual_fit(
                &mut student,
                &mut teacher,
                &split_train,
                &conv_train,
                &split_test,
                cfg.setup.epochs,
                &ml,
                &mut opt_s,
                &mut opt_t,
                &mut rng,
            )
        } else {
            let mut opt = Sgd::with_momentum(cfg.setup.lr, cfg.setup.momentum, cfg.setup.weight_decay);
            opt.clip = Some(1.0);
            fit(
                &mut student,
                &split_train,
                &split_test,
                cfg.setup.epochs,
                cfg.setup.batch,
                &mut opt,
                &mut rng,
                false,
            )
        };
        // `fit`/`mutual_fit` return the final accuracy; recompute through
        // the shared path for clarity.
        let accuracy = {
            let _ = accuracy;
            evaluate(&mut student, &split_test, cfg.setup.batch)
        };

        let detection = match cfg.decoder {
            DecoderKind::Merge => DeployedDetection::Differential,
            DecoderKind::Coherent => DeployedDetection::CoherentReal,
            // Linear/unitary decoders keep their extra layer in software
            // form here; their optical stage is the same differential
            // readout.
            _ => DeployedDetection::Differential,
        };
        let deployed = DeployedFcnn::from_network(&student, detection, cfg.mesh_style)
            .expect("FCNN bodies are always deployable");
        let deployed_accuracy = deployed.accuracy(&split_test.inputs, &split_test.labels);
        let deployed_mzis = deployed.device_count().mzis;

        OplixNetOutcome {
            network: student,
            accuracy,
            deployed_accuracy,
            deployed,
            orig_spec: fcnn_orig(),
            deployed_mzis,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oplix_datasets::synth::{digits, SynthConfig};

    fn quick_data() -> (RealDataset, RealDataset) {
        let cfg = SynthConfig {
            height: 8,
            width: 8,
            samples: 240,
            ..Default::default()
        };
        let train = digits(&cfg);
        let test = digits(&SynthConfig { samples: 120, seed: 1, ..cfg });
        (train, test)
    }

    #[test]
    fn pipeline_end_to_end_merge_decoder() {
        let (train, test) = quick_data();
        let outcome = OplixNetBuilder::new()
            .hidden(16)
            .mutual_learning(false)
            .train_setup(TrainSetup {
                epochs: 12,
                batch: 32,
                lr: 0.05,
                momentum: 0.9,
                weight_decay: 1e-4,
            })
            .build(&train, &test)
            .run();
        assert!(outcome.accuracy > 0.2, "accuracy {}", outcome.accuracy);
        // Hardware must agree with software almost exactly (the deployment
        // is numerically exact up to f32->f64 and SVD round-off).
        assert!(
            outcome.hardware_gap() < 0.05,
            "software {} vs hardware {}",
            outcome.accuracy,
            outcome.deployed_accuracy
        );
        assert!(outcome.deployed_mzis > 0);
    }

    #[test]
    fn pipeline_with_mutual_learning_runs() {
        let (train, test) = quick_data();
        let outcome = OplixNetBuilder::new()
            .hidden(16)
            .mutual_learning(true)
            .alpha(1.0)
            .train_setup(TrainSetup {
                epochs: 12,
                batch: 32,
                lr: 0.05,
                momentum: 0.9,
                weight_decay: 1e-4,
            })
            .seed(3)
            .build(&train, &test)
            .run();
        assert!(outcome.accuracy > 0.2);
    }
}
