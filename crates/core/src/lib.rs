//! # OplixNet
//!
//! A reproduction of *"OplixNet: Towards Area-Efficient Optical
//! Split-Complex Networks with Real-to-Complex Data Assignment and
//! Knowledge Distillation"* (Qiu et al., DATE 2024).
//!
//! OplixNet compresses MZI-based optical neural networks by ~75 % by
//! encoding two real values into the amplitude *and phase* of one light
//! signal (real-to-complex data assignment), training the resulting
//! split-complex network with a CVNN teacher through mutual learning, and
//! reading the complex outputs with a learnable merging decoder that needs
//! only photodiodes.
//!
//! This crate ties the substrates together:
//!
//! * [`spec`] — paper-scale architecture specs and exact MZI counting
//!   (Table II's area columns reproduce digit-for-digit);
//! * [`zoo`] — training-scale FCNN / LeNet-5 / ResNet builders in every
//!   network family (RVNN / conventional ONN / split with any decoder);
//! * [`deploy`] — SVD phase mapping of trained networks onto the
//!   field-level photonic simulator, with noise injection and power
//!   accounting;
//! * [`pipeline`] — the end-to-end OplixNet workflow of Fig. 2;
//! * [`experiments`] — runners regenerating Table II, Table III and
//!   Figs. 7–9, plus the A1–A3 ablations.
//!
//! # Quickstart
//!
//! ```
//! use oplixnet::pipeline::OplixNetBuilder;
//! use oplixnet::experiments::TrainSetup;
//! use oplix_datasets::synth::{digits, SynthConfig};
//!
//! let train = digits(&SynthConfig { height: 8, width: 8, samples: 100, ..Default::default() });
//! let test = digits(&SynthConfig { height: 8, width: 8, samples: 50, seed: 1, ..Default::default() });
//! let outcome = OplixNetBuilder::new()
//!     .hidden(16)
//!     .mutual_learning(false)
//!     .train_setup(TrainSetup { epochs: 2, batch: 25, lr: 0.05, momentum: 0.9, weight_decay: 1e-4 })
//!     .build(&train, &test)
//!     .run();
//! assert!(outcome.accuracy >= 0.0);
//! assert!(outcome.hardware_gap() < 0.2);
//! ```

pub mod deploy;
pub mod experiments;
pub mod pipeline;
pub mod spec;
pub mod zoo;

pub use deploy::{DeployedDetection, DeployedFcnn};
pub use pipeline::{OplixNetBuilder, OplixNetOutcome, OplixNetPipeline};
pub use spec::ModelSpec;
pub use zoo::ModelVariant;
