//! # OplixNet
//!
//! A reproduction of *"OplixNet: Towards Area-Efficient Optical
//! Split-Complex Networks with Real-to-Complex Data Assignment and
//! Knowledge Distillation"* (Qiu et al., DATE 2024), grown into a
//! serving-oriented photonic inference stack.
//!
//! OplixNet compresses MZI-based optical neural networks by ~75 % by
//! encoding two real values into the amplitude *and phase* of one light
//! signal (real-to-complex data assignment), training the resulting
//! split-complex network with a CVNN teacher through mutual learning, and
//! reading the complex outputs with a learnable merging decoder that needs
//! only photodiodes.
//!
//! This crate ties the substrates together:
//!
//! * [`stage`] — the composable pipeline API: typed
//!   `Assign → Train → Deploy → Evaluate` stages behind one [`stage::Stage`]
//!   trait, swappable per workload;
//! * [`engine`] — the batched [`engine::InferenceEngine`] over deployed
//!   meshes: worker-sharded batches, preallocated per-worker forward
//!   buffers, streaming evaluation (with optional early-exit
//!   [`engine::Confidence`] abstention), noise-injection sessions,
//!   throughput counters;
//! * [`serve`] — the concurrent serving front end: a [`serve::Server`]
//!   owns a deployed model behind a bounded request queue, a micro-batcher
//!   thread coalesces concurrent [`serve::Client`] submissions into
//!   engine batches (flush on `max_batch` / `max_wait`), and
//!   [`serve::Ticket`]s resolve to per-request predictions — bitwise
//!   identical to direct `classify` calls. Deployments are versioned:
//!   [`serve::Server::swap`] hot-swaps the model at a micro-batch
//!   boundary with zero downtime, [`serve::Server::canary`] routes a
//!   seeded fraction of traffic to a candidate version with per-version
//!   accept/abstain/accuracy tallies ([`serve::CanaryStats`]) feeding a
//!   [`serve::Server::promote`] / [`serve::Server::rollback`] decision,
//!   and a [`oplix_photonics::PhaseDrift`] model
//!   ([`serve::ServerBuilder::drift`]) wanders the phases between
//!   micro-batches so online recalibration (drift → swap) runs end to
//!   end;
//! * [`router`] — the multi-model tier above [`serve`]: one
//!   [`router::Router`] admits requests for N named, runtime-registered
//!   model deployments (deduplicated through the deploy cache), each
//!   served by its own earliest-deadline-first micro-batching lane with
//!   a fair, queue-depth-weighted share of the worker budget,
//!   per-lane versioned hot swap ([`router::Router::swap_model`]), and
//!   [`router::RouterStats`] reporting per-model depth, p50/p99 waits
//!   and deadline misses;
//! * [`pool`] — the shared bounded worker pool (the `--jobs` /
//!   `OPLIX_JOBS` knob) that every experiment grid and sharded batch
//!   draws its concurrency from;
//! * [`error`] — the workspace-wide typed [`error::Error`]; no public API
//!   path panics on recoverable conditions;
//! * [`pipeline`] — [`pipeline::OplixNetBuilder`], the one-call FCNN
//!   configuration of the standard stage pipeline;
//! * [`spec`] — paper-scale architecture specs and exact MZI counting
//!   (Table II's area columns reproduce digit-for-digit);
//! * [`zoo`] — training-scale FCNN / LeNet-5 / ResNet builders in every
//!   network family (RVNN / conventional ONN / split with any decoder);
//! * [`deploy`] — SVD phase mapping of trained networks (and
//!   decoder-bearing heads) onto the field-level photonic simulator, with
//!   a process-wide decomposition cache so repeated deployments of one
//!   architecture skip the SVD;
//! * [`experiments`] — runners regenerating Table II, Table III and
//!   Figs. 7–9, plus the A1–A3 ablations, all built on the stage API.
//!
//! # Quickstart: the builder
//!
//! ```
//! use oplixnet::pipeline::OplixNetBuilder;
//! use oplixnet::experiments::TrainSetup;
//! use oplix_datasets::synth::{digits, SynthConfig};
//!
//! let train = digits(&SynthConfig { height: 8, width: 8, samples: 100, ..Default::default() });
//! let test = digits(&SynthConfig { height: 8, width: 8, samples: 50, seed: 1, ..Default::default() });
//! let outcome = OplixNetBuilder::new()
//!     .hidden(16)
//!     .mutual_learning(false)
//!     .train_setup(TrainSetup { epochs: 2, batch: 25, lr: 0.05, momentum: 0.9, weight_decay: 1e-4 })
//!     .build(&train, &test)
//!     .run()
//!     .expect("geometry is valid and FCNNs deploy");
//! assert!(outcome.accuracy >= 0.0);
//! assert!(outcome.hardware_gap() < 0.2);
//!
//! // The outcome carries a reusable serving engine over the deployed meshes.
//! let mut engine = outcome.engine;
//! let test_view = oplix_datasets::assign::AssignmentKind::SpatialInterlace
//!     .apply_dataset_flat(&test);
//! let classes = engine.classify(&test_view.inputs).expect("batch matches mesh fan-in");
//! assert_eq!(classes.len(), 50);
//! assert!(engine.stats().samples >= 50);
//! ```
//!
//! # Quickstart: explicit stages
//!
//! Swap any stage without touching the rest — here a custom student
//! factory on the standard flow:
//!
//! ```
//! use oplixnet::stage::{AssignStage, AssignedData, DatasetPair, DeployStage, Pipeline, TrainStage};
//! use oplixnet::zoo::{build_fcnn, FcnnConfig, ModelVariant};
//! use oplixnet::experiments::TrainSetup;
//! use oplix_datasets::assign::AssignmentKind;
//! use oplix_datasets::synth::{digits, SynthConfig};
//! use oplix_photonics::decoder::DecoderKind;
//! use rand::rngs::StdRng;
//!
//! let cfg = SynthConfig { height: 8, width: 8, samples: 80, ..Default::default() };
//! let pair = DatasetPair::new(digits(&cfg), digits(&SynthConfig { seed: 1, ..cfg }));
//! let variant = ModelVariant::Split(DecoderKind::Merge);
//! let pipeline = Pipeline::standard(
//!     AssignStage::flat(AssignmentKind::SpatialInterlace),
//!     TrainStage::new(
//!         Box::new(move |data: &AssignedData, rng: &mut StdRng| {
//!             Ok(build_fcnn(
//!                 &FcnnConfig { input: data.assigned_features(), hidden: 8, classes: data.classes },
//!                 variant,
//!                 rng,
//!             ))
//!         }),
//!         TrainSetup { epochs: 2, batch: 20, lr: 0.05, momentum: 0.9, weight_decay: 1e-4 },
//!         42,
//!     ),
//!     DeployStage::new(variant.detection()),
//! );
//! let eval = pipeline.run(pair).expect("stages run");
//! assert!(eval.hardware_gap() < 0.2);
//! ```

#![warn(missing_docs)]

pub mod deploy;
pub mod engine;
pub mod error;
pub mod experiments;
pub mod pipeline;
pub mod pool;
pub mod router;
pub mod serve;
pub mod spec;
pub mod stage;
pub mod zoo;

pub use deploy::{
    clear_deploy_cache, deploy_cache_stats, ChipReport, DeployCacheStats, DeployedDetection,
    DeployedFcnn, StageOccupancy,
};
pub use engine::{
    Confidence, DriftSession, EngineStats, InferenceEngine, StageStats, StreamingReport,
};
pub use error::Error;
pub use pipeline::{OplixNetBuilder, OplixNetOutcome, OplixNetPipeline, OutcomeSummary};
pub use router::{
    EdfQueue, ModelStats, Priority, Router, RouterBuilder, RouterClient, RouterRequest,
    RouterStats, RouterTicket, Served,
};
pub use serve::{
    CanaryPolicy, CanaryStats, Client, Prediction, Server, ServerBuilder, ServerStats, SwapOutcome,
    SwapTicket, Ticket, VersionTally,
};
pub use spec::ModelSpec;
pub use stage::{
    AssignStage, AssignedData, DatasetPair, DeployStage, EvaluateStage, Evaluation, Pipeline,
    Stage, StageExt, TrainStage,
};
pub use zoo::ModelVariant;
