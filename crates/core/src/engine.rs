//! Batched inference engine over deployed photonic hardware.
//!
//! [`DeployedFcnn`] is the *artifact* of deployment; [`InferenceEngine`]
//! is the *serving* wrapper that makes it reusable across many queries:
//!
//! * **preallocated forward buffers** — after the first call, a query does
//!   not allocate on the field path (see
//!   [`DeployedFcnn::forward_into`](crate::deploy::DeployedFcnn::forward_into));
//! * **batched `predict` / `classify`** over dataset views, checked
//!   against the mesh geometry with typed [`Error`]s instead of panics;
//! * **sharded batches** — [`InferenceEngine::with_num_workers`] splits a
//!   batch across a fixed set of worker slots served by the shared
//!   [`crate::pool`] budget, each worker owning its own preallocated
//!   buffers; results are bitwise identical to the sequential path because
//!   every sample's field walk is independent and row spans are fixed;
//! * **compiled kernel windows** — each worker pushes its row span through
//!   [`DeployedFcnn::forward_window_into`](crate::deploy::DeployedFcnn::forward_window_into)
//!   in bounded windows: one precompiled coefficient kernel per optical
//!   stage covers the whole window (no per-sample trigonometry), bitwise
//!   identical to the per-sample walk;
//! * **streaming evaluation** — [`InferenceEngine::accuracy_streaming`]
//!   walks a labelled view in bounded chunks instead of materialising one
//!   result vector per test set;
//! * **per-batch noise-injection sessions** — [`InferenceEngine::noise_session`]
//!   perturbs every mesh phase for the duration of the session and
//!   restores the programmed phases on drop, so robustness studies share
//!   one engine instead of redeploying per noise level;
//! * **throughput counters** — samples, batches and busy time served,
//!   for capacity planning.
//!
//! ```
//! use oplixnet::engine::InferenceEngine;
//! use oplixnet::zoo::{build_fcnn, FcnnConfig, ModelVariant};
//! use oplixnet::deploy::DeployedDetection;
//! use oplix_photonics::decoder::DecoderKind;
//! use oplix_photonics::svd_map::MeshStyle;
//! use oplix_nn::ctensor::CTensor;
//! use oplix_nn::tensor::Tensor;
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! let mut rng = StdRng::seed_from_u64(1);
//! let net = build_fcnn(
//!     &FcnnConfig { input: 6, hidden: 5, classes: 2 },
//!     ModelVariant::Split(DecoderKind::Merge),
//!     &mut rng,
//! );
//! let mut engine = InferenceEngine::from_network(
//!     &net, DeployedDetection::Differential, MeshStyle::Clements,
//! ).expect("FCNN deploys");
//! let batch = CTensor::from_re(Tensor::random_uniform(&[4, 6], 1.0, &mut rng));
//! let classes = engine.classify(&batch).expect("geometry matches");
//! assert_eq!(classes.len(), 4);
//! assert_eq!(engine.stats().samples, 4);
//! ```

use crate::deploy::{ChipReport, DeployedDetection, DeployedFcnn, StageOccupancy, WindowBuffers};
use crate::error::Error;
use oplix_linalg::Complex64;
use oplix_nn::ctensor::CTensor;
use oplix_nn::network::Network;
use oplix_nn::trainer::CDataset;
use oplix_photonics::svd_map::MeshStyle;
use oplix_photonics::PhaseDrift;
use rand::Rng;
use std::ops::{Deref, DerefMut};
use std::time::{Duration, Instant};

/// Cumulative serving counters of an [`InferenceEngine`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Samples inferred since construction (or the last reset).
    pub samples: u64,
    /// Batch calls served.
    pub batches: u64,
    /// Nanoseconds spent inside field-level inference.
    pub busy_nanos: u64,
}

impl EngineStats {
    /// Mean serving throughput in samples per second of busy time.
    pub fn samples_per_sec(&self) -> f64 {
        if self.busy_nanos == 0 {
            0.0
        } else {
            self.samples as f64 / (self.busy_nanos as f64 * 1e-9)
        }
    }

    fn absorb(&mut self, samples: u64, busy: Duration) {
        self.samples += samples;
        self.batches += 1;
        self.busy_nanos += busy.as_nanos() as u64;
    }
}

/// An early-exit confidence policy for the streaming and serving paths:
/// a sample's logits are softmaxed, and its confidence is the top-1
/// probability *renormalised over the `top_k` most probable classes*.
/// Samples whose confidence falls below `threshold` are reported as
/// abstentions instead of predictions.
///
/// With `top_k` equal to the class count the score is the plain maximum
/// softmax probability; `top_k == 2` is the classic two-way margin
/// (`p₁ / (p₁ + p₂)`); `top_k == 1` degenerates to a constant `1.0`, so
/// every sample is accepted at any `threshold ≤ 1`.
///
/// ```
/// use oplixnet::engine::Confidence;
///
/// let policy = Confidence { threshold: 0.9, top_k: 2 };
/// // A decisive sample clears the two-way margin, a close call abstains.
/// assert!(policy.accepts(&[4.0, -1.0, 0.0]));
/// assert!(!policy.accepts(&[1.0, 0.9, -2.0]));
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Confidence {
    /// Minimum renormalised top-1 probability for a prediction to count.
    pub threshold: f64,
    /// How many of the most probable classes the top-1 mass is
    /// renormalised over (clamped to `1..=classes`).
    pub top_k: usize,
}

impl Confidence {
    /// The predicted class and its confidence score for one logit row.
    ///
    /// Allocation-free: scoring runs inside the engine's per-sample emit
    /// path, which stays allocation-free after warm-up.
    pub fn score(&self, logits: &[f64]) -> (usize, f64) {
        let best = argmax(logits);
        if logits.is_empty() {
            return (0, 1.0);
        }
        // Stabilised softmax: exp(l − max). The best class scores
        // exp(0) = 1, so the renormalised top-1 mass is 1 / Σ top-k.
        let peak = logits[best];
        let k = self.top_k.clamp(1, logits.len());
        let mass: f64 = if k == logits.len() {
            logits.iter().map(|l| (l - peak).exp()).sum()
        } else {
            // Top-k selection without a sort or a scratch buffer: walk
            // the distinct logit values in descending order (O(k·classes),
            // and classes is small), taking ties together.
            let mut mass = 0.0;
            let mut remaining = k;
            let mut bound = f64::INFINITY;
            while remaining > 0 {
                let mut next = f64::NEG_INFINITY;
                let mut ties = 0usize;
                for &l in logits {
                    if l < bound {
                        if l > next {
                            next = l;
                            ties = 1;
                        } else if l == next {
                            ties += 1;
                        }
                    }
                }
                if ties == 0 {
                    break; // non-finite stragglers; the clamp covers the rest
                }
                let take = ties.min(remaining);
                mass += take as f64 * (next - peak).exp();
                remaining -= take;
                bound = next;
            }
            mass
        };
        (best, 1.0 / mass)
    }

    /// Whether a logit row clears the confidence threshold.
    pub fn accepts(&self, logits: &[f64]) -> bool {
        self.score(logits).1 >= self.threshold
    }
}

/// Calibrated counts of one streaming evaluation pass (see
/// [`InferenceEngine::accuracy_streaming_with`]): how many samples were
/// evaluated, how many the confidence policy accepted or abstained on,
/// and how many accepted predictions were correct.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StreamingReport {
    /// Samples evaluated.
    pub samples: usize,
    /// Samples whose prediction cleared the confidence policy (all of
    /// them when no policy is configured).
    pub accepted: usize,
    /// Samples reported as abstentions by the confidence policy.
    pub abstained: usize,
    /// Correct predictions among the accepted samples.
    pub correct: usize,
}

impl StreamingReport {
    /// Selective accuracy: correct predictions over accepted samples
    /// (`0.0` when everything abstained).
    pub fn accuracy(&self) -> f64 {
        if self.accepted == 0 {
            0.0
        } else {
            self.correct as f64 / self.accepted as f64
        }
    }

    /// Fraction of samples the policy accepted.
    pub fn coverage(&self) -> f64 {
        if self.samples == 0 {
            0.0
        } else {
            self.accepted as f64 / self.samples as f64
        }
    }
}

/// One worker's private serving state: the window buffers every query
/// path (single-sample `predict` included) pushes staged sample windows
/// through. Workers never share these, so the sharded batch path stays
/// allocation-free per sample after warm-up — the same property the
/// sequential path has.
#[derive(Clone, Debug, Default)]
struct WorkerSlot {
    window: WindowBuffers,
    window_logits: Vec<f64>,
}

/// Where a batched query's rows come from: a `[N, D]` tensor view (the
/// dataset paths) or a contiguous row-major complex slice (the serving
/// front end's borrowed batch). Both stage into the identical windowed
/// compiled-kernel walk, so the two sources are bitwise interchangeable.
#[derive(Clone, Copy)]
enum RowSource<'a> {
    /// A `[N, D]` complex dataset view.
    View(&'a CTensor),
    /// `rows.len() / width` samples stored row-major.
    Rows {
        /// The flat row-major fields.
        rows: &'a [Complex64],
        /// Complex fan-in of one sample.
        width: usize,
    },
}

/// How many rows one compiled-kernel window covers: big enough to
/// amortise the per-stage batch dispatch, small enough that a worker's
/// window buffers stay a few tens of kilobytes.
const SERVE_WINDOW: usize = 64;

impl WorkerSlot {
    /// Runs rows `start..end` of a view through the deployed hardware in
    /// compiled-kernel windows ([`DeployedFcnn::forward_window_into`]),
    /// emitting one `T` per row. Each window applies one compiled kernel
    /// per optical stage across all its samples instead of re-walking the
    /// stage list per sample; per-sample results are bitwise identical to
    /// the sequential walk. Row indices in errors are absolute, and the
    /// lowest offending row wins — the sequential walk's first-error
    /// semantics.
    fn run_rows<T>(
        &mut self,
        deployed: &DeployedFcnn,
        src: RowSource<'_>,
        start: usize,
        end: usize,
        emit: &(impl Fn(&[f64]) -> T + Sync),
    ) -> Result<Vec<T>, Error> {
        let k = deployed.logit_dim().max(1);
        let mut out = Vec::with_capacity(end.saturating_sub(start));
        let mut lo = start;
        while lo < end {
            let hi = (lo + SERVE_WINDOW).min(end);
            match src {
                RowSource::View(inputs) => deployed.forward_window_into(
                    inputs,
                    lo,
                    hi,
                    &mut self.window,
                    &mut self.window_logits,
                )?,
                RowSource::Rows { rows, width } => deployed.forward_rows_into(
                    &rows[lo * width..hi * width],
                    &mut self.window,
                    &mut self.window_logits,
                )?,
            }
            for (r, row) in self.window_logits.chunks_exact(k).enumerate() {
                check_finite(row, lo + r)?;
                out.push(emit(row));
            }
            lo = hi;
        }
        Ok(out)
    }
}

/// A reusable, batched query engine over one deployed network.
#[derive(Clone, Debug)]
pub struct InferenceEngine {
    deployed: DeployedFcnn,
    workers: Vec<WorkerSlot>,
    stats: EngineStats,
    /// Route batched spans through the stage-pipelined walk when the
    /// worker budget has room (see
    /// [`InferenceEngine::with_stage_pipeline`]).
    stage_pipeline: bool,
    /// Cumulative per-stage pipeline occupancy, in stage order (empty
    /// until the first pipelined span).
    stage_occupancy: Vec<StageOccupancy>,
}

/// One deployed stage's combined multi-chip serving report: the static
/// physical budget of the chip ([`ChipReport`] — mesh depth, worst-path
/// insertion loss, time-of-flight latency) plus its cumulative pipeline
/// occupancy ([`StageOccupancy`] — windows processed, busy time).
/// Surfaced per engine by [`InferenceEngine::stage_stats`] and flowed
/// into [`crate::serve::ServerStats`] / `router::ModelStats` snapshots.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct StageStats {
    /// Static per-chip physics under the silicon platform defaults.
    pub chip: ChipReport,
    /// Cumulative dynamic pipeline counters.
    pub occupancy: StageOccupancy,
}

/// Below this many samples per worker, sharding a batch costs more in
/// thread launch than it saves; such batches run on the caller's thread.
const MIN_ROWS_PER_WORKER: usize = 2;

impl InferenceEngine {
    /// Wraps an already-deployed network. The engine starts sequential
    /// (one worker); see [`InferenceEngine::with_num_workers`].
    pub fn new(deployed: DeployedFcnn) -> Self {
        InferenceEngine {
            deployed,
            workers: vec![WorkerSlot::default()],
            stats: EngineStats::default(),
            stage_pipeline: false,
            stage_occupancy: Vec::new(),
        }
    }

    /// Shards batched queries across a fixed pool of `n` workers, each
    /// with its own preallocated forward buffers. `n = 0` resolves to the
    /// shared [`crate::pool::jobs`] budget — the `--jobs` knob. Threads
    /// are drawn from the process-wide pool ([`crate::pool::run_scoped`]),
    /// so an engine sharding inside an already-parallel grid arm degrades
    /// to inline execution instead of oversubscribing. Sharded output is
    /// bitwise identical to the sequential path at any budget: row spans
    /// are fixed per worker slot, samples are independent, and each runs
    /// the exact same field walk.
    ///
    /// ```
    /// use oplixnet::engine::InferenceEngine;
    /// use oplixnet::zoo::{build_fcnn, FcnnConfig, ModelVariant};
    /// use oplixnet::deploy::DeployedDetection;
    /// use oplix_photonics::decoder::DecoderKind;
    /// use oplix_photonics::svd_map::MeshStyle;
    /// use oplix_nn::ctensor::CTensor;
    /// use oplix_nn::tensor::Tensor;
    /// use rand::{rngs::StdRng, SeedableRng};
    ///
    /// let mut rng = StdRng::seed_from_u64(1);
    /// let net = build_fcnn(
    ///     &FcnnConfig { input: 6, hidden: 5, classes: 2 },
    ///     ModelVariant::Split(DecoderKind::Merge),
    ///     &mut rng,
    /// );
    /// let make = || InferenceEngine::from_network(
    ///     &net, DeployedDetection::Differential, MeshStyle::Clements,
    /// ).expect("FCNN deploys");
    /// let batch = CTensor::from_re(Tensor::random_uniform(&[64, 6], 1.0, &mut rng));
    ///
    /// let sequential = make().classify(&batch).expect("classify");
    /// let sharded = make().with_num_workers(3).classify(&batch).expect("classify");
    /// assert_eq!(sequential, sharded); // bitwise identical, any worker count
    /// ```
    pub fn with_num_workers(mut self, n: usize) -> Self {
        self.set_num_workers(n);
        self
    }

    /// In-place form of [`InferenceEngine::with_num_workers`].
    pub fn set_num_workers(&mut self, n: usize) {
        let n = if n == 0 { crate::pool::jobs() } else { n };
        self.workers.resize_with(n.max(1), WorkerSlot::default);
    }

    /// How many workers batched queries shard across.
    pub fn num_workers(&self) -> usize {
        self.workers.len()
    }

    /// Opts batched spans into the **stage-pipelined** walk: instead of
    /// sharding rows across workers (data parallelism), the deployed
    /// stage chain is partitioned into contiguous segments — each
    /// [`crate::deploy::DeployedFcnn`] stage is physically one chip — and
    /// sample windows stream through the segments concurrently over
    /// bounded inter-stage rings
    /// ([`crate::deploy::STAGE_RING_WINDOWS`]), with results landing in
    /// submission order. Helper threads are drawn from the shared
    /// [`crate::pool`] budget; with no budget to spare (including a
    /// `--jobs 1` run) the engine falls back to the sequential walk, and
    /// either way the output is **bitwise identical** to pipelining off
    /// at any worker count, because both walks apply the exact same
    /// per-stage transform at the same window boundaries.
    ///
    /// ```
    /// use oplixnet::engine::InferenceEngine;
    /// use oplixnet::zoo::{build_fcnn, FcnnConfig, ModelVariant};
    /// use oplixnet::deploy::DeployedDetection;
    /// use oplix_photonics::decoder::DecoderKind;
    /// use oplix_photonics::svd_map::MeshStyle;
    /// use oplix_nn::ctensor::CTensor;
    /// use oplix_nn::tensor::Tensor;
    /// use rand::{rngs::StdRng, SeedableRng};
    ///
    /// let mut rng = StdRng::seed_from_u64(1);
    /// let net = build_fcnn(
    ///     &FcnnConfig { input: 6, hidden: 5, classes: 2 },
    ///     ModelVariant::Split(DecoderKind::Merge),
    ///     &mut rng,
    /// );
    /// let make = || InferenceEngine::from_network(
    ///     &net, DeployedDetection::Differential, MeshStyle::Clements,
    /// ).expect("FCNN deploys");
    /// let batch = CTensor::from_re(Tensor::random_uniform(&[96, 6], 1.0, &mut rng));
    ///
    /// let sequential = make().classify(&batch).expect("classify");
    /// let pipelined = make().with_stage_pipeline(true).classify(&batch).expect("classify");
    /// assert_eq!(sequential, pipelined); // bitwise identical, any budget
    /// ```
    pub fn with_stage_pipeline(mut self, on: bool) -> Self {
        self.set_stage_pipeline(on);
        self
    }

    /// In-place form of [`InferenceEngine::with_stage_pipeline`].
    pub fn set_stage_pipeline(&mut self, on: bool) {
        self.stage_pipeline = on;
    }

    /// Whether batched spans attempt the stage-pipelined walk.
    pub fn stage_pipeline(&self) -> bool {
        self.stage_pipeline
    }

    /// The per-chip serving report, one entry per deployed stage in stage
    /// order: static insertion-loss/latency budgets (from
    /// [`oplix_photonics::loss_model`] under silicon defaults) combined
    /// with the cumulative pipeline occupancy this engine has observed.
    /// Occupancy stays zero until a span actually runs pipelined (see
    /// [`InferenceEngine::with_stage_pipeline`]).
    pub fn stage_stats(&self) -> Vec<StageStats> {
        self.deployed
            .chip_reports()
            .into_iter()
            .map(|chip| StageStats {
                occupancy: self
                    .stage_occupancy
                    .get(chip.stage)
                    .copied()
                    .unwrap_or_default(),
                chip,
            })
            .collect()
    }

    /// Deploys a trained network and wraps it in one step.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Deploy`] if the network body cannot be mapped onto
    /// an FCNN photonic pipeline.
    pub fn from_network(
        net: &Network,
        detection: DeployedDetection,
        style: MeshStyle,
    ) -> Result<Self, Error> {
        Ok(InferenceEngine::new(DeployedFcnn::from_network(
            net, detection, style,
        )?))
    }

    /// Deploys a trained network with an explicit `(C, H, W)` body input
    /// shape and wraps it in one step — the entry point for CNN bodies,
    /// whose conv/pool layers need the image geometry to build their
    /// im2col gather plans (see
    /// [`DeployedFcnn::from_network_shaped`]). The
    /// [`crate::stage::DeployStage`] passes the assigned shape through
    /// here automatically.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Deploy`] if the network body cannot be lowered
    /// onto a photonic pipeline.
    pub fn from_network_shaped(
        net: &Network,
        input_shape: Option<(usize, usize, usize)>,
        detection: DeployedDetection,
        style: MeshStyle,
    ) -> Result<Self, Error> {
        Ok(InferenceEngine::new(DeployedFcnn::from_network_shaped(
            net,
            input_shape,
            detection,
            style,
        )?))
    }

    /// The deployed hardware the engine serves.
    pub fn deployed(&self) -> &DeployedFcnn {
        &self.deployed
    }

    /// Unwraps the engine back into its deployed network.
    pub fn into_deployed(self) -> DeployedFcnn {
        self.deployed
    }

    /// The complex fan-in a query sample must have.
    pub fn input_dim(&self) -> usize {
        self.deployed.input_dim()
    }

    /// Serving counters accumulated so far.
    pub fn stats(&self) -> EngineStats {
        self.stats
    }

    /// Zeroes the serving counters (per-stage pipeline occupancy
    /// included).
    pub fn reset_stats(&mut self) {
        self.stats = EngineStats::default();
        self.stage_occupancy.clear();
    }

    /// Detected logits of one already-assigned sample.
    ///
    /// Routed through the same compiled windowed kernel
    /// ([`DeployedFcnn::forward_rows_into`], a one-sample window) as the
    /// batched paths, so per-sample and batched serving share one kernel
    /// and stay bitwise interchangeable.
    ///
    /// # Errors
    ///
    /// Returns [`Error::ShapeMismatch`] on a fan-in mismatch and
    /// [`Error::NonFiniteLogits`] if the sample poisons detection.
    pub fn predict(&mut self, input: &[Complex64]) -> Result<Vec<f64>, Error> {
        if input.len() != self.input_dim() {
            return Err(Error::ShapeMismatch {
                expected: self.input_dim(),
                got: input.len(),
                what: "input fields",
            });
        }
        let start = Instant::now();
        let slot = &mut self.workers[0];
        self.deployed
            .forward_rows_into(input, &mut slot.window, &mut slot.window_logits)?;
        check_finite(&slot.window_logits, 0)?;
        self.stats.absorb(1, start.elapsed());
        Ok(slot.window_logits.clone())
    }

    /// Detected logits of every sample in a `[N, D]` complex batch.
    ///
    /// # Errors
    ///
    /// Returns [`Error::ShapeMismatch`] if the view is not rank 2 or `D`
    /// differs from the mesh fan-in, [`Error::EmptyInput`] on an empty
    /// batch, and [`Error::NonFiniteLogits`] if a sample poisons
    /// detection.
    pub fn predict_batch(&mut self, inputs: &CTensor) -> Result<Vec<Vec<f64>>, Error> {
        self.run_batch(inputs, |logits| logits.to_vec())
    }

    /// Predicted class indices of every sample in a `[N, D]` complex batch.
    ///
    /// # Errors
    ///
    /// Same conditions as [`InferenceEngine::predict_batch`].
    pub fn classify(&mut self, inputs: &CTensor) -> Result<Vec<usize>, Error> {
        self.run_batch(inputs, argmax)
    }

    /// Predicted class indices of `rows.len() / input_dim` samples given
    /// as one contiguous row-major complex slice — the borrowed-batch
    /// query the serving front end's micro-batcher drives
    /// ([`crate::serve`]): staged client samples are served in place, with
    /// no intermediate tensor copy. Bitwise identical to
    /// [`InferenceEngine::classify`] on the same samples.
    ///
    /// # Errors
    ///
    /// Returns [`Error::ShapeMismatch`] if `rows.len()` is not a multiple
    /// of [`InferenceEngine::input_dim`], [`Error::EmptyInput`] on an
    /// empty slice, and [`Error::NonFiniteLogits`] if a sample poisons
    /// detection.
    pub fn classify_rows(&mut self, rows: &[Complex64]) -> Result<Vec<usize>, Error> {
        self.serve_rows(rows, &argmax)
    }

    /// The generic borrowed-batch walk behind [`InferenceEngine::classify_rows`]
    /// and the serving front end: every sample's detected logits are folded
    /// through `emit` (class pick, confidence policy, …).
    pub(crate) fn serve_rows<T: Send>(
        &mut self,
        rows: &[Complex64],
        emit: &(impl Fn(&[f64]) -> T + Sync),
    ) -> Result<Vec<T>, Error> {
        let width = self.input_dim();
        if width == 0 || !rows.len().is_multiple_of(width) {
            return Err(Error::ShapeMismatch {
                expected: width,
                got: rows.len(),
                what: "row fields",
            });
        }
        if rows.is_empty() {
            return Err(Error::EmptyInput { stage: "engine" });
        }
        let n = rows.len() / width;
        self.run_rows(RowSource::Rows { rows, width }, 0, n, emit)
    }

    /// Predicted class indices of rows `start..start + len` of a `[N, D]`
    /// complex batch — the bounded-window query the streaming evaluation
    /// path is built on. Sample indices in errors are absolute row
    /// indices, not window-relative.
    ///
    /// # Errors
    ///
    /// Same conditions as [`InferenceEngine::predict_batch`], plus
    /// [`Error::ShapeMismatch`] if the window overruns the view.
    pub fn classify_range(
        &mut self,
        inputs: &CTensor,
        start: usize,
        len: usize,
    ) -> Result<Vec<usize>, Error> {
        let (n, _) = self.check_batch(inputs)?;
        let end = start.checked_add(len).filter(|&e| e <= n).ok_or({
            // Saturate the reported end so a wrap-around stays a typed
            // error instead of a panic or a silent empty result.
            Error::ShapeMismatch {
                expected: n,
                got: start.saturating_add(len),
                what: "batch window end",
            }
        })?;
        if len == 0 {
            return Err(Error::EmptyInput { stage: "engine" });
        }
        self.run_rows(RowSource::View(inputs), start, end, &argmax)
    }

    /// Classification accuracy of the deployed hardware on a labelled
    /// dataset view.
    ///
    /// # Errors
    ///
    /// Same conditions as [`InferenceEngine::predict_batch`].
    pub fn accuracy(&mut self, data: &CDataset) -> Result<f64, Error> {
        let preds = self.classify(&data.inputs)?;
        let correct = preds
            .iter()
            .zip(&data.labels)
            .filter(|(p, l)| p == l)
            .count();
        Ok(correct as f64 / data.labels.len() as f64)
    }

    /// Classification accuracy over a labelled view, streamed through the
    /// engine in windows of at most `batch_size` samples instead of
    /// materialising one prediction vector for the whole set. Each window
    /// still shards across the worker pool; only a running correct-count
    /// survives between windows, so memory is bounded by the window, not
    /// the dataset.
    ///
    /// # Errors
    ///
    /// Same conditions as [`InferenceEngine::predict_batch`]; sample
    /// indices in errors are absolute dataset rows.
    ///
    /// # Panics
    ///
    /// Panics if `batch_size == 0`.
    pub fn accuracy_streaming(&mut self, data: &CDataset, batch_size: usize) -> Result<f64, Error> {
        let report = self.accuracy_streaming_with(data, batch_size, None)?;
        Ok(report.correct as f64 / report.samples as f64)
    }

    /// Streaming evaluation with an optional early-exit [`Confidence`]
    /// policy: every sample is classified through the windowed engine
    /// path, but samples whose confidence score falls below the policy's
    /// threshold are counted as *abstentions* instead of predictions. The
    /// returned [`StreamingReport`] carries the calibrated counts —
    /// accepted, abstained, and correct-among-accepted — so callers can
    /// trade coverage against selective accuracy. With `confidence =
    /// None` every sample is accepted and
    /// [`StreamingReport::accuracy`] equals
    /// [`InferenceEngine::accuracy_streaming`].
    ///
    /// # Errors
    ///
    /// Same conditions as [`InferenceEngine::predict_batch`]; sample
    /// indices in errors are absolute dataset rows.
    ///
    /// # Panics
    ///
    /// Panics if `batch_size == 0`.
    pub fn accuracy_streaming_with(
        &mut self,
        data: &CDataset,
        batch_size: usize,
        confidence: Option<Confidence>,
    ) -> Result<StreamingReport, Error> {
        assert!(batch_size > 0, "streaming batch size must be positive");
        let (n, _) = self.check_batch(&data.inputs)?;
        let mut report = StreamingReport::default();
        let emit = |logits: &[f64]| match confidence {
            None => (argmax(logits), true),
            Some(c) => {
                let (best, score) = c.score(logits);
                (best, score >= c.threshold)
            }
        };
        let mut start = 0;
        while start < n {
            let len = batch_size.min(n - start);
            let preds = self.run_rows(RowSource::View(&data.inputs), start, start + len, &emit)?;
            for ((pred, accepted), label) in preds.iter().zip(&data.labels[start..start + len]) {
                report.samples += 1;
                if *accepted {
                    report.accepted += 1;
                    if pred == label {
                        report.correct += 1;
                    }
                } else {
                    report.abstained += 1;
                }
            }
            start += len;
        }
        Ok(report)
    }

    /// Opens a noise-injection session: every mesh phase is perturbed with
    /// Gaussian noise of standard deviation `sigma` radians, queries run
    /// against the noisy hardware through the session handle, and the
    /// programmed phases are restored when the session drops.
    pub fn noise_session<R: Rng>(&mut self, sigma: f64, rng: &mut R) -> NoiseSession<'_> {
        let clean = self.deployed.stages_vec().clone();
        if sigma > 0.0 {
            self.deployed.inject_phase_noise(sigma, rng);
        }
        NoiseSession {
            engine: self,
            clean,
        }
    }

    /// Applies one accumulating phase-drift step to the deployed hardware
    /// and recompiles the affected kernels. The counterpart to
    /// [`InferenceEngine::noise_session`] for *slow* error: each call
    /// moves every mesh phase one Gaussian random-walk increment further
    /// from its calibrated point, with no restore — recalibration is a
    /// fresh deployment hot-swapped in (see `serve::Server::swap`).
    pub fn drift_step(&mut self, drift: &mut PhaseDrift) {
        self.deployed.drift_step(drift);
    }

    /// Opens a drift session: the clean phases are remembered, the walk in
    /// `drift` is stepped on demand via [`DriftSession::step`], and the
    /// calibrated phases are restored when the session drops — the scoped
    /// study variant of [`InferenceEngine::drift_step`].
    pub fn drift_session(&mut self, drift: PhaseDrift) -> DriftSession<'_> {
        let clean = self.deployed.stages_vec().clone();
        DriftSession {
            engine: self,
            clean,
            drift,
        }
    }

    /// The one batch walk every query method shares: validate, then run
    /// every row through [`WorkerSlot::run_rows`] — on the calling thread
    /// when one worker (or a tiny batch), sharded into contiguous row
    /// spans across the worker pool otherwise.
    fn run_batch<T: Send>(
        &mut self,
        inputs: &CTensor,
        emit: impl Fn(&[f64]) -> T + Sync,
    ) -> Result<Vec<T>, Error> {
        let (n, _) = self.check_batch(inputs)?;
        self.run_rows(RowSource::View(inputs), 0, n, &emit)
    }

    /// Runs rows `start..end` (absolute indices into the source), sharding
    /// across the worker pool when the span is big enough to pay for the
    /// thread launches. Error reporting matches the sequential walk: the
    /// error of the lowest offending row wins.
    fn run_rows<T: Send>(
        &mut self,
        src: RowSource<'_>,
        start: usize,
        end: usize,
        emit: &(impl Fn(&[f64]) -> T + Sync),
    ) -> Result<Vec<T>, Error> {
        let n = end - start;
        let clock = Instant::now();
        if self.stage_pipeline {
            if let Some(out) = self.run_span_pipelined(src, start, end, emit)? {
                self.stats.absorb(n as u64, clock.elapsed());
                return Ok(out);
            }
        }
        let shards = self
            .workers
            .len()
            .min(n / MIN_ROWS_PER_WORKER)
            .clamp(1, n.max(1));
        let out = if shards <= 1 {
            self.workers[0].run_rows(&self.deployed, src, start, end, emit)
        } else {
            let deployed = &self.deployed;
            let rows_per_shard = n.div_ceil(shards);
            // Row spans are fixed per shard regardless of how many
            // threads the shared pool actually grants, so the output is
            // bitwise identical at any budget (including an exhausted one,
            // where the tasks run inline).
            let tasks: Vec<Box<dyn FnOnce() -> Result<Vec<T>, Error> + Send + '_>> = self
                .workers
                .iter_mut()
                .take(shards)
                .enumerate()
                .map(|(w, slot)| {
                    let lo = start + w * rows_per_shard;
                    let hi = (lo + rows_per_shard).min(end);
                    Box::new(move || slot.run_rows(deployed, src, lo, hi, emit))
                        as Box<dyn FnOnce() -> Result<Vec<T>, Error> + Send + '_>
                })
                .collect();
            let chunks: Vec<Result<Vec<T>, Error>> = crate::pool::run_scoped(tasks);
            // Shards cover increasing row spans, so scanning them in order
            // reproduces the sequential walk's first-error semantics.
            let mut out = Vec::with_capacity(n);
            let mut failure = None;
            for chunk in chunks {
                match chunk {
                    Ok(part) => out.extend(part),
                    Err(e) => {
                        failure = Some(e);
                        break;
                    }
                }
            }
            match failure {
                Some(e) => Err(e),
                None => Ok(out),
            }
        }?;
        self.stats.absorb(n as u64, clock.elapsed());
        Ok(out)
    }

    /// Attempts the stage-pipelined walk over rows `start..end`. Returns
    /// `Ok(None)` when the pipeline cannot engage — fewer than two
    /// deployed stages, or the shared [`crate::pool`] budget has no room
    /// for a helper thread (a `--jobs 1` run) — in which case the caller
    /// falls back to the sequential/sharded walk. Engaged or not, the
    /// emitted values are bitwise identical: both walks apply the same
    /// per-stage transform at the same [`SERVE_WINDOW`] boundaries, and
    /// pipelined windows land in submission order.
    fn run_span_pipelined<T: Send>(
        &mut self,
        src: RowSource<'_>,
        start: usize,
        end: usize,
        emit: &(impl Fn(&[f64]) -> T + Sync),
    ) -> Result<Option<Vec<T>>, Error> {
        if self.deployed.num_stages() < 2 {
            return Ok(None);
        }
        // One budget slot per stage (chip), the caller's included; helpers
        // beyond the caller come out of the grant. The reservation returns
        // its share when the span completes.
        let reservation = crate::pool::reserve_pipeline_workers(self.deployed.num_stages());
        let helpers = reservation.granted().saturating_sub(1);
        if helpers == 0 {
            return Ok(None);
        }
        let n = end - start;
        let width = self.input_dim();
        let mut fill = |lo: usize, hi: usize, out: &mut Vec<Complex64>| {
            out.clear();
            match src {
                RowSource::Rows { rows, width } => {
                    out.extend_from_slice(&rows[(start + lo) * width..(start + hi) * width]);
                }
                RowSource::View(inputs) => {
                    // The exact staging of `forward_window_into`, so the
                    // two sources stay bitwise interchangeable.
                    let (re, im) = (inputs.re.as_slice(), inputs.im.as_slice());
                    for s in (start + lo)..(start + hi) {
                        out.extend(
                            re[s * width..(s + 1) * width]
                                .iter()
                                .zip(&im[s * width..(s + 1) * width])
                                .map(|(&a, &b)| Complex64::new(a as f64, b as f64)),
                        );
                    }
                }
            }
        };
        let (logits, occupancy) =
            self.deployed
                .forward_windows_pipelined(n, SERVE_WINDOW, helpers, &mut fill);
        drop(reservation);
        if self.stage_occupancy.len() < occupancy.len() {
            self.stage_occupancy
                .resize(occupancy.len(), StageOccupancy::default());
        }
        for (acc, occ) in self.stage_occupancy.iter_mut().zip(&occupancy) {
            acc.windows += occ.windows;
            acc.busy_nanos += occ.busy_nanos;
        }
        let k = self.deployed.logit_dim().max(1);
        let mut out = Vec::with_capacity(n);
        for (r, row) in logits.chunks_exact(k).enumerate() {
            check_finite(row, start + r)?;
            out.push(emit(row));
        }
        Ok(Some(out))
    }

    fn check_batch(&self, inputs: &CTensor) -> Result<(usize, usize), Error> {
        // `[N, D]` flat views and `[N, C, H, W]` image views (CNN
        // workloads) alike: samples are contiguous row-major, so the
        // trailing axes flatten into one sample width.
        if inputs.shape().len() < 2 {
            return Err(Error::ShapeMismatch {
                expected: 2,
                got: inputs.shape().len(),
                what: "batch rank",
            });
        }
        let n = inputs.shape()[0];
        let d: usize = inputs.shape()[1..].iter().product();
        if n == 0 {
            return Err(Error::EmptyInput { stage: "engine" });
        }
        if d != self.input_dim() {
            return Err(Error::ShapeMismatch {
                expected: self.input_dim(),
                got: d,
                what: "sample width",
            });
        }
        Ok((n, d))
    }
}

/// Serving contract: poisoned queries are values, not panics.
fn check_finite(logits: &[f64], sample: usize) -> Result<(), Error> {
    if logits.iter().all(|v| v.is_finite()) {
        Ok(())
    } else {
        Err(Error::NonFiniteLogits { sample })
    }
}

/// The class-pick rule every classify path applies: index of the largest
/// logit under `f64::total_cmp`, first index winning ties (and `0` for an
/// empty row). Public because the tie-breaking is load-bearing for the
/// serving layer's bitwise-identical-across-entry-points contract —
/// clients turning [`InferenceEngine::predict`] logits into classes
/// should use this exact rule, not a lookalike.
pub fn argmax(v: &[f64]) -> usize {
    v.iter()
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(b.1))
        .map(|(i, _)| i)
        .unwrap_or(0)
}

/// A scoped view of an [`InferenceEngine`] with phase noise injected; the
/// clean phases come back when the session drops. Dereferences to the
/// engine, so every query method is available on the session.
pub struct NoiseSession<'a> {
    engine: &'a mut InferenceEngine,
    clean: Vec<crate::deploy::DeployedStage>,
}

impl Deref for NoiseSession<'_> {
    type Target = InferenceEngine;

    fn deref(&self) -> &InferenceEngine {
        self.engine
    }
}

impl DerefMut for NoiseSession<'_> {
    fn deref_mut(&mut self) -> &mut InferenceEngine {
        self.engine
    }
}

impl Drop for NoiseSession<'_> {
    fn drop(&mut self) {
        *self.engine.deployed.stages_vec_mut() = std::mem::take(&mut self.clean);
    }
}

/// A scoped view of an [`InferenceEngine`] under accumulating phase drift:
/// each [`DriftSession::step`] walks every mesh phase one increment
/// further, queries through the session see the drifted hardware, and the
/// calibrated phases come back when the session drops. Dereferences to the
/// engine, so every query method is available on the session.
pub struct DriftSession<'a> {
    engine: &'a mut InferenceEngine,
    clean: Vec<crate::deploy::DeployedStage>,
    drift: PhaseDrift,
}

impl DriftSession<'_> {
    /// Advances the drift walk by one step on every deployed mesh.
    pub fn step(&mut self) {
        self.engine.deployed.drift_step(&mut self.drift);
    }

    /// The drift process driving this session.
    pub fn drift(&self) -> &PhaseDrift {
        &self.drift
    }
}

impl Deref for DriftSession<'_> {
    type Target = InferenceEngine;

    fn deref(&self) -> &InferenceEngine {
        self.engine
    }
}

impl DerefMut for DriftSession<'_> {
    fn deref_mut(&mut self) -> &mut InferenceEngine {
        self.engine
    }
}

impl Drop for DriftSession<'_> {
    fn drop(&mut self) {
        *self.engine.deployed.stages_vec_mut() = std::mem::take(&mut self.clean);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zoo::{build_fcnn, FcnnConfig, ModelVariant};
    use oplix_nn::tensor::Tensor;
    use oplix_photonics::decoder::DecoderKind;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn engine(seed: u64) -> InferenceEngine {
        let mut rng = StdRng::seed_from_u64(seed);
        let net = build_fcnn(
            &FcnnConfig {
                input: 6,
                hidden: 5,
                classes: 3,
            },
            ModelVariant::Split(DecoderKind::Merge),
            &mut rng,
        );
        InferenceEngine::from_network(&net, DeployedDetection::Differential, MeshStyle::Clements)
            .expect("FCNN deploys")
    }

    fn batch(n: usize, d: usize, seed: u64) -> CTensor {
        let mut rng = StdRng::seed_from_u64(seed);
        CTensor::new(
            Tensor::random_uniform(&[n, d], 1.0, &mut rng),
            Tensor::random_uniform(&[n, d], 1.0, &mut rng),
        )
    }

    #[test]
    fn batched_predictions_match_per_sample_forward() {
        let mut engine = engine(1);
        let x = batch(5, 6, 2);
        let batched = engine.predict_batch(&x).expect("predict");
        for (i, logits) in batched.iter().enumerate() {
            let sample: Vec<Complex64> = (0..6)
                .map(|j| Complex64::new(x.re.at2(i, j) as f64, x.im.at2(i, j) as f64))
                .collect();
            let single = engine.deployed().forward(&sample);
            assert_eq!(logits.len(), single.len());
            for (a, b) in logits.iter().zip(&single) {
                assert!((a - b).abs() < 1e-12, "sample {i}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn shape_errors_are_typed_not_panics() {
        let mut engine = engine(3);
        let wrong = batch(4, 5, 4);
        match engine.classify(&wrong) {
            Err(Error::ShapeMismatch {
                expected: 6,
                got: 5,
                ..
            }) => {}
            other => panic!("expected shape mismatch, got {other:?}"),
        }
        let empty = CTensor::zeros(&[0, 6]);
        assert!(matches!(
            engine.classify(&empty),
            Err(Error::EmptyInput { .. })
        ));
    }

    #[test]
    fn stats_count_samples_and_batches() {
        let mut engine = engine(5);
        let x = batch(7, 6, 6);
        engine.classify(&x).expect("classify");
        engine.predict_batch(&x).expect("predict");
        let stats = engine.stats();
        assert_eq!(stats.samples, 14);
        assert_eq!(stats.batches, 2);
        assert!(stats.busy_nanos > 0);
        assert!(stats.samples_per_sec() > 0.0);
        engine.reset_stats();
        assert_eq!(engine.stats(), EngineStats::default());
    }

    #[test]
    fn stage_pipeline_matches_sequential_and_reports_occupancy() {
        // A multi-slot budget lets the pipeline reservation grant helper
        // threads (the budget is process-global and every test must be
        // correct at any budget, so overriding it here is safe).
        crate::pool::set_jobs(8);
        // 150 samples = 3 serving windows: more windows than the
        // inter-stage ring holds, so streaming actually overlaps.
        let x = batch(150, 6, 8);
        let mut sequential = engine(7);
        let want = sequential.predict_batch(&x).expect("sequential");

        let mut pipelined = engine(7).with_stage_pipeline(true);
        assert!(pipelined.stage_pipeline());
        // Under transient budget contention (other tests holding slots)
        // a run may fall back to the sequential walk; equality must hold
        // either way, and occupancy must appear once a run pipelines.
        let mut engaged = false;
        for _ in 0..50 {
            let got = pipelined.predict_batch(&x).expect("pipelined");
            assert_eq!(got, want, "pipelined logits must be bitwise identical");
            engaged = pipelined
                .stage_stats()
                .iter()
                .any(|s| s.occupancy.windows > 0);
            if engaged {
                break;
            }
        }
        assert!(engaged, "an 8-slot budget must eventually grant helpers");

        let stats = pipelined.stage_stats();
        assert_eq!(stats.len(), pipelined.deployed().num_stages());
        for s in &stats {
            if s.chip.optical {
                assert!(s.chip.insertion_loss_db > 0.0);
                assert!(s.chip.latency_ps > 0.0);
            }
        }
        // reset_stats clears the occupancy half along with the counters.
        pipelined.reset_stats();
        assert!(pipelined
            .stage_stats()
            .iter()
            .all(|s| s.occupancy == crate::deploy::StageOccupancy::default()));
    }

    #[test]
    fn non_finite_queries_are_typed_errors_not_panics() {
        use oplix_nn::head::MergeHead;
        use oplix_nn::layers::{CDense, CSequential};

        // Multi-stage pipelines sanitise poisoned fields at the
        // electro-optic ReLU (NaN clamps to zero, ∞ turns NaN at the next
        // mesh), so the reachable non-finite logit path is a single-stage
        // deployment, where the input feeds detection directly.
        let mut rng = StdRng::seed_from_u64(15);
        let body = CSequential::new().push(CDense::new(4, 6, &mut rng));
        let net = Network::new(body, Box::new(MergeHead::new()));
        let mut engine = InferenceEngine::from_network(
            &net,
            DeployedDetection::Differential,
            MeshStyle::Clements,
        )
        .expect("deploys");

        let mut x = batch(3, 4, 16);
        x.re.as_mut_slice()[5] = f32::INFINITY; // poison sample 1
        match engine.classify(&x) {
            Err(Error::NonFiniteLogits { sample: 1 }) => {}
            other => panic!("expected NonFiniteLogits for sample 1, got {other:?}"),
        }
        // The engine keeps serving clean batches afterwards.
        let clean = batch(2, 4, 17);
        assert_eq!(engine.classify(&clean).expect("serves").len(), 2);
    }

    #[test]
    fn noise_session_restores_clean_phases() {
        let mut engine = engine(7);
        let x = batch(3, 6, 8);
        let clean = engine.predict_batch(&x).expect("clean");
        let mut rng = StdRng::seed_from_u64(9);
        let noisy = {
            let mut session = engine.noise_session(0.4, &mut rng);
            session.predict_batch(&x).expect("noisy")
        };
        let diff: f64 = clean
            .iter()
            .flatten()
            .zip(noisy.iter().flatten())
            .map(|(a, b)| (a - b).abs())
            .sum();
        assert!(diff > 1e-9, "noise had no effect");
        let restored = engine.predict_batch(&x).expect("restored");
        assert_eq!(clean, restored, "session failed to restore phases");
    }

    #[test]
    fn zero_sigma_session_is_identity() {
        let mut engine = engine(11);
        let x = batch(2, 6, 12);
        let clean = engine.predict_batch(&x).expect("clean");
        let mut rng = StdRng::seed_from_u64(13);
        let inside = {
            let mut session = engine.noise_session(0.0, &mut rng);
            session.predict_batch(&x).expect("session")
        };
        assert_eq!(clean, inside);
    }
}
