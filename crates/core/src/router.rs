//! Multi-model serving router: one admission layer over N named model
//! deployments with deadline-aware (EDF) micro-batching.
//!
//! The [`crate::serve`] front end owns exactly one deployed model and
//! flushes FIFO. Production photonic serving is multi-tenant: many models
//! share one substrate, requests carry latency budgets, and one hot
//! tenant must not starve the rest. This module is that tier:
//!
//! ```text
//!             ┌───────────── Router ─────────────────────────────┐
//!  submit ──▶ │ admission:  name → lane,  deadline check         │
//!             │ ┌─ lane "a" ─┐ ┌─ lane "b" ─┐ ┌─ lane "c" ─┐     │
//!             │ │bounded MPSC│ │bounded MPSC│ │bounded MPSC│     │
//!             │ │ EDF batcher│ │ EDF batcher│ │ EDF batcher│     │
//!             │ │  engine a  │ │  engine b  │ │  engine c  │     │
//!             │ └────────────┘ └────────────┘ └────────────┘     │
//!             │    fair share of the `--jobs` budget, weighted   │
//!             │    by queue depth × optical stage count          │
//!             └──────────────────────────────────────────────────┘
//! ```
//!
//! * **Admission**: every [`RouterRequest`] names its target model.
//!   Unknown names are refused with [`Error::UnknownModel`]; a request
//!   whose deadline has already passed is refused with
//!   [`Error::DeadlineExceeded`] before it costs a queue slot.
//! * **Per-model lanes**: each registered model owns a bounded queue and
//!   a dedicated batcher thread over its own [`InferenceEngine`] —
//!   the same queue/ticket/backpressure machinery as
//!   [`crate::serve::Server`], generalised to N lanes behind one router.
//!   Models register and deregister at runtime; registration goes
//!   through the process-wide deploy cache, so two models over the same
//!   weights share one cached decomposition
//!   ([`ModelStats::cache_shared`] reports when that happened).
//! * **Versioned hot swap**: [`Router::swap_model`] replaces a lane's
//!   deployment without closing it — the replacement deploys in the
//!   background, a control message rides the lane queue, and the
//!   batcher switches engines at a micro-batch boundary. Requests carry
//!   the version they were admitted under ([`Served::version`]) and are
//!   always served by that version's engine, exactly as in
//!   [`crate::serve::Server::swap`]. Deregistering a lane while a swap
//!   is still queued hands back the *currently serving* engine and
//!   aborts the swap — its replacement engine returns through the
//!   [`SwapTicket`] as [`crate::serve::SwapOutcome::Aborted`], never
//!   lost.
//! * **EDF batching**: lanes coalesce like the FIFO server (flush on
//!   `max_batch` or `max_wait`), but the pending set is an
//!   [`EdfQueue`] — flushes pop by earliest deadline, then priority
//!   class, then arrival. A deadline that would expire inside the
//!   coalescing window cuts the window short, and a request found
//!   expired at flush time is rejected with
//!   [`Error::DeadlineExceeded`] instead of wasting mesh cycles.
//! * **Fairness**: at every flush a lane sizes its engine's worker
//!   shard count to its share of the process `--jobs` budget,
//!   proportional to queue depth weighted by the model's optical stage
//!   count (deeper meshes cost more per sample). Safe because engine
//!   results are bitwise identical at any worker count.
//! * **Observability**: [`RouterStats`] reports, per model, the full
//!   [`ServerStats`] shape plus deadline misses, p50/p99 queue waits
//!   and whether the deployment was served from cache.
//!
//! Predictions are **bitwise identical** to serving each model through
//! its own dedicated [`crate::serve::Server`] — routing and EDF
//! reordering change *when* a sample is flushed, never its result.

use crate::engine::{Confidence, InferenceEngine};
use crate::error::Error;
use crate::serve::{
    decide, relock, Control, Counters, EngineRack, Prediction, ServerStats, SwapTicket, VersionGate,
};
use oplix_linalg::Complex64;
use oplix_nn::network::Network;
use oplix_photonics::svd_map::MeshStyle;
use std::collections::{BTreeMap, BinaryHeap};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex, RwLock};
use std::thread;
use std::time::{Duration, Instant};

use crate::deploy::DeployedDetection;

/// How often an idle lane batcher wakes to check its stop flag (the same
/// shutdown-latency knob as the single-model server's).
const IDLE_POLL: Duration = Duration::from_millis(1);

/// The priority class a [`RouterRequest`] carries. Within one deadline
/// tier the EDF batcher flushes lower variants first, so the derived
/// order *is* the scheduling order: `Interactive < Standard < Batch`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Priority {
    /// Latency-sensitive traffic; flushed before everything else in its
    /// deadline tier.
    Interactive,
    /// The default class.
    #[default]
    Standard,
    /// Throughput traffic; yields to the other classes.
    Batch,
}

/// The scheduling key of one queued entry: earliest deadline first
/// (deadline-less entries sort after every deadline), then priority
/// class, then admission order.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct EdfKey {
    deadline: Option<Instant>,
    priority: Priority,
    seq: u64,
}

impl Ord for EdfKey {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        match (self.deadline, other.deadline) {
            (Some(a), Some(b)) => a.cmp(&b),
            (Some(_), None) => std::cmp::Ordering::Less,
            (None, Some(_)) => std::cmp::Ordering::Greater,
            (None, None) => std::cmp::Ordering::Equal,
        }
        .then_with(|| self.priority.cmp(&other.priority))
        .then_with(|| self.seq.cmp(&other.seq))
    }
}

impl PartialOrd for EdfKey {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

struct EdfEntry<T> {
    key: EdfKey,
    arrived: Instant,
    value: T,
}

impl<T> PartialEq for EdfEntry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}
impl<T> Eq for EdfEntry<T> {}
impl<T> PartialOrd for EdfEntry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for EdfEntry<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key.cmp(&other.key)
    }
}

/// One entry popped from an [`EdfQueue`].
#[derive(Clone, Copy, Debug)]
pub struct EdfItem<T> {
    /// The entry's deadline, if it carried one.
    pub deadline: Option<Instant>,
    /// The entry's priority class.
    pub priority: Priority,
    /// When the entry was pushed (drives the `max_wait` flush window).
    pub arrived: Instant,
    /// The queued payload.
    pub value: T,
}

/// An earliest-deadline-first priority queue: entries pop ordered by
/// deadline (entries without one sort last), then [`Priority`], then
/// push order. This is the pending set of every router lane; it is
/// public so schedulers and property tests can exercise the ordering
/// directly.
///
/// ```
/// use oplixnet::router::{EdfQueue, Priority};
/// use std::time::{Duration, Instant};
///
/// let now = Instant::now();
/// let mut q = EdfQueue::new();
/// q.push(None, Priority::Batch, now, "no deadline");
/// q.push(Some(now + Duration::from_secs(60)), Priority::Standard, now, "loose");
/// q.push(Some(now + Duration::from_secs(1)), Priority::Standard, now, "tight");
/// q.push(None, Priority::Interactive, now, "interactive");
///
/// let order: Vec<_> = std::iter::from_fn(|| q.pop().map(|e| e.value)).collect();
/// assert_eq!(order, ["tight", "loose", "interactive", "no deadline"]);
/// ```
pub struct EdfQueue<T> {
    heap: BinaryHeap<std::cmp::Reverse<EdfEntry<T>>>,
    seq: u64,
}

impl<T> Default for EdfQueue<T> {
    fn default() -> Self {
        EdfQueue::new()
    }
}

impl<T> EdfQueue<T> {
    /// An empty queue.
    pub fn new() -> Self {
        EdfQueue {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Pushes one entry; ties on deadline and priority pop in push order.
    pub fn push(
        &mut self,
        deadline: Option<Instant>,
        priority: Priority,
        arrived: Instant,
        value: T,
    ) {
        let key = EdfKey {
            deadline,
            priority,
            seq: self.seq,
        };
        self.seq += 1;
        self.heap.push(std::cmp::Reverse(EdfEntry {
            key,
            arrived,
            value,
        }));
    }

    /// Pops the scheduling-first entry, if any.
    pub fn pop(&mut self) -> Option<EdfItem<T>> {
        self.heap.pop().map(|std::cmp::Reverse(e)| EdfItem {
            deadline: e.key.deadline,
            priority: e.key.priority,
            arrived: e.arrived,
            value: e.value,
        })
    }

    /// Number of queued entries.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// The earliest deadline among queued entries (`None` if no entry
    /// carries one). O(1): it is the head's deadline unless the head is
    /// deadline-less, in which case nothing has one.
    pub fn earliest_deadline(&self) -> Option<Instant> {
        self.heap
            .peek()
            .and_then(|std::cmp::Reverse(e)| e.key.deadline)
    }

    /// The earliest arrival among queued entries — what anchors the
    /// `max_wait` flush window. O(n).
    pub fn oldest_arrival(&self) -> Option<Instant> {
        self.heap.iter().map(|std::cmp::Reverse(e)| e.arrived).min()
    }
}

/// One routed request: the target model's name, the staged sample, and
/// the optional deadline / priority class the EDF batcher schedules by.
#[derive(Clone, Debug)]
pub struct RouterRequest {
    model: String,
    fields: Vec<Complex64>,
    deadline: Option<Instant>,
    priority: Priority,
}

impl RouterRequest {
    /// A request for `model` with no deadline and [`Priority::Standard`].
    pub fn new(model: impl Into<String>, fields: Vec<Complex64>) -> Self {
        RouterRequest {
            model: model.into(),
            fields,
            deadline: None,
            priority: Priority::default(),
        }
    }

    /// Sets the deadline `budget` from now. A request still queued when
    /// its deadline passes is rejected with [`Error::DeadlineExceeded`].
    pub fn deadline_in(self, budget: Duration) -> Self {
        self.deadline_at(Instant::now() + budget)
    }

    /// Sets an absolute deadline (useful when many requests share one
    /// SLO edge).
    pub fn deadline_at(mut self, at: Instant) -> Self {
        self.deadline = Some(at);
        self
    }

    /// Sets the priority class (default [`Priority::Standard`]).
    pub fn priority(mut self, p: Priority) -> Self {
        self.priority = p;
        self
    }
}

/// The successful response to one routed request: the prediction plus
/// which flush served it and how long it queued — enough for callers
/// (and the EDF-ordering tests) to observe the scheduler's decisions.
#[derive(Clone, Debug)]
pub struct Served {
    /// The model's prediction for the sample.
    pub prediction: Prediction,
    /// 1-based index of the lane flush that served this request; two
    /// requests with the same `flush_seq` rode one micro-batch, and a
    /// smaller value means an earlier flush.
    pub flush_seq: u64,
    /// How long the request queued between admission and flush.
    pub waited: Duration,
    /// The lane deployment version the request was admitted under — the
    /// version whose engine served it, no matter how many swaps landed
    /// while it queued.
    pub version: u64,
}

/// A pending response to one routed request; resolves like
/// [`crate::serve::Ticket`], to a [`Served`] carrying scheduling
/// metadata alongside the prediction.
#[derive(Debug)]
pub struct RouterTicket {
    rx: mpsc::Receiver<Result<Served, Error>>,
    done: Option<Result<Served, Error>>,
}

impl RouterTicket {
    /// Blocks until the request's micro-batch is served. A router (or
    /// lane) shutting down before the request could be served surfaces
    /// as [`Error::ServerClosed`] — tickets never hang.
    ///
    /// # Errors
    ///
    /// [`Error::DeadlineExceeded`] if the deadline passed while queued,
    /// [`Error::NonFiniteLogits`] if the sample poisoned detection,
    /// [`Error::ServerClosed`] as above.
    pub fn wait(mut self) -> Result<Served, Error> {
        if let Some(done) = self.done.take() {
            return done;
        }
        self.rx.recv().unwrap_or(Err(Error::ServerClosed))
    }

    /// Non-blocking poll: `None` while queued or in flight,
    /// `Some(result)` once resolved (repeat calls return the same
    /// result).
    pub fn try_wait(&mut self) -> Option<Result<Served, Error>> {
        if self.done.is_none() {
            match self.rx.try_recv() {
                Ok(done) => self.done = Some(done),
                Err(mpsc::TryRecvError::Empty) => {}
                Err(mpsc::TryRecvError::Disconnected) => self.done = Some(Err(Error::ServerClosed)),
            }
        }
        self.done.clone()
    }
}

/// One queued lane request (the router-side analogue of the serve
/// module's `Request`, plus its scheduling key).
struct LaneRequest {
    fields: Vec<Complex64>,
    reply: mpsc::Sender<Result<Served, Error>>,
    enqueued_at: Instant,
    deadline: Option<Instant>,
    priority: Priority,
    version: u64,
}

/// What flows through a lane queue: routed requests interleaved with
/// version-change controls, exactly like the serve module's envelope.
/// FIFO channel order + controls published under the lane gate's write
/// lock = version order, so the batcher can retire engines safely.
enum LaneEnvelope {
    Request(LaneRequest),
    Control(Control),
}

/// Per-lane weighted queue depths (`queued requests × optical weight`),
/// keyed by lane registration id — the inputs to the largest-remainder
/// split of the `--jobs` worker budget. A registry rather than a single
/// router-wide sum: computing every lane's share from one consistent
/// snapshot is what keeps the *summed* allocation bounded (the old
/// per-lane `clamp(1, jobs)` let N idle-but-nonempty lanes claim N >
/// jobs shards in aggregate).
#[derive(Default)]
struct FairShare {
    lanes: Mutex<BTreeMap<u64, u64>>,
    next_id: AtomicU64,
}

impl FairShare {
    /// Adds a lane to the registry (weighted depth 0) and returns its id.
    fn register(&self) -> u64 {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        relock(self.lanes.lock()).insert(id, 0);
        id
    }

    /// Removes a lane; its workers return to the splittable budget.
    fn deregister(&self, id: u64) {
        relock(self.lanes.lock()).remove(&id);
    }

    /// One admission: the lane's weighted depth grows by its weight.
    fn add(&self, id: u64, weight: u64) {
        if let Some(w) = relock(self.lanes.lock()).get_mut(&id) {
            *w += weight;
        }
    }

    /// One response: the admission's weight is handed back.
    fn sub(&self, id: u64, weight: u64) {
        if let Some(w) = relock(self.lanes.lock()).get_mut(&id) {
            *w = w.saturating_sub(weight);
        }
    }

    /// Lane `id`'s share of the `jobs` budget under one consistent
    /// registry snapshot, floored at the one worker the lane itself is
    /// (a lane about to serve a batch always runs at least itself).
    fn share_for(&self, id: u64, jobs: usize) -> usize {
        let lanes = relock(self.lanes.lock());
        let idx = lanes.keys().position(|k| *k == id);
        let weights: Vec<u64> = lanes.values().copied().collect();
        drop(lanes);
        idx.map_or(1, |i| fair_shares(jobs, &weights)[i].max(1))
    }
}

/// Splits the `jobs` worker budget across lanes by weighted queue depth,
/// bounding the **sum**: every live lane (weight > 0) keeps the one
/// worker it is, and only the remaining budget — `jobs` minus the live
/// lane count, when positive — is divided proportionally by weight with
/// a largest-remainder rounding (remainder ties break toward the lower
/// index, so the split is deterministic). Idle lanes (weight 0) get 0.
///
/// Invariant: `Σ shares == max(jobs, live lanes)` whenever any lane is
/// live — the allocation oversubscribes the budget only by the floor
/// that serving lanes physically occupy, never by proportional rounding.
fn fair_shares(jobs: usize, weights: &[u64]) -> Vec<usize> {
    let jobs = jobs.max(1);
    let mut shares: Vec<usize> = weights.iter().map(|&w| usize::from(w > 0)).collect();
    let live: usize = shares.iter().sum();
    let spare = jobs.saturating_sub(live);
    let total: u64 = weights.iter().sum();
    if spare == 0 || total == 0 {
        return shares;
    }
    // Largest-remainder split of the spare workers by weight: floors
    // first, then one extra worker per largest fractional part until the
    // spare pool is spent.
    let mut remainders: Vec<(usize, u64)> = Vec::with_capacity(weights.len());
    let mut assigned = 0usize;
    for (i, &w) in weights.iter().enumerate() {
        if w == 0 {
            continue;
        }
        let scaled = spare as u128 * w as u128;
        shares[i] += (scaled / total as u128) as usize;
        assigned += (scaled / total as u128) as usize;
        remainders.push((i, (scaled % total as u128) as u64));
    }
    remainders.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    for (i, _) in remainders.into_iter().take(spare - assigned) {
        shares[i] += 1;
    }
    shares
}

/// The flush policy every lane inherits from its [`RouterBuilder`].
#[derive(Clone, Copy)]
struct LanePolicy {
    max_batch: usize,
    max_wait: Duration,
    confidence: Option<Confidence>,
}

/// One registered model: its bounded queue, counters and batcher thread.
struct Lane {
    /// Admission side of the lane queue; taken (and dropped) on
    /// shutdown/deregistration so the batcher's drain terminates.
    tx: Mutex<Option<mpsc::SyncSender<LaneEnvelope>>>,
    stop: Arc<AtomicBool>,
    counters: Arc<Counters>,
    /// The lane's version barrier (see [`crate::serve`]): admissions
    /// stamp + send under its read side, swaps publish under its write
    /// side.
    gate: Arc<VersionGate>,
    deadline_missed: Arc<AtomicU64>,
    input_dim: usize,
    queue_cap: usize,
    /// Scheduling weight: the deployment's optical stage count (deeper
    /// meshes cost more per sample), floored at 1. A stage-pipelined
    /// lane keeps the same weight — pipelining changes how the lane's
    /// share is used, not how much work each queued sample represents.
    weight: u64,
    /// This lane's slot in the router-wide [`FairShare`] registry.
    fair_id: u64,
    optical_stages: usize,
    cache_shared: bool,
    handle: Mutex<Option<thread::JoinHandle<InferenceEngine>>>,
}

impl Lane {
    /// Stops the lane, drains its queue and joins the batcher, handing
    /// the engine back. Idempotent; `None` after the first call.
    fn shutdown(&self) -> Option<InferenceEngine> {
        self.stop.store(true, Ordering::SeqCst);
        drop(relock(self.tx.lock()).take());
        relock(self.handle.lock())
            .take()
            .map(|h| h.join().expect("router lane batcher panicked"))
    }
}

/// Everything the router handle and its clients share.
struct RouterCore {
    // Name-ordered, so every walk over the lane table — stats snapshots,
    // shutdown drains — is deterministic by construction (the
    // determinism-hazards lint forbids hash iteration on serving paths).
    lanes: RwLock<BTreeMap<String, Arc<Lane>>>,
    policy: LanePolicy,
    queue_cap: usize,
    closed: AtomicBool,
    fair: Arc<FairShare>,
}

impl RouterCore {
    fn submit_inner(&self, req: RouterRequest, blocking: bool) -> Result<RouterTicket, Error> {
        if self.closed.load(Ordering::SeqCst) {
            return Err(Error::ServerClosed);
        }
        let lane = relock(self.lanes.read())
            .get(&req.model)
            .cloned()
            .ok_or(Error::UnknownModel { model: req.model })?;
        if req.fields.len() != lane.input_dim {
            return Err(Error::ShapeMismatch {
                expected: lane.input_dim,
                got: req.fields.len(),
                what: "sample width",
            });
        }
        let now = Instant::now();
        if let Some(deadline) = req.deadline {
            if now >= deadline {
                // Refuse before the request costs a queue slot: a result
                // nobody can use should not spend mesh cycles.
                lane.deadline_missed.fetch_add(1, Ordering::Relaxed);
                return Err(Error::DeadlineExceeded {
                    missed_by: now - deadline,
                });
            }
        }
        let tx = relock(lane.tx.lock()).clone().ok_or(Error::ServerClosed)?;
        let (reply, rx) = mpsc::channel();
        let fields = req.fields;
        // Stamp + send under the lane gate's read side, so no swap
        // barrier can land between the version stamp and the queue send.
        let sent = lane.gate.admit(|version| {
            let request = LaneEnvelope::Request(LaneRequest {
                fields,
                reply,
                enqueued_at: now,
                deadline: req.deadline,
                priority: req.priority,
                version,
            });
            if blocking {
                tx.send(request).map_err(|_| Error::ServerClosed)
            } else {
                tx.try_send(request).map_err(|e| match e {
                    mpsc::TrySendError::Full(_) => Error::QueueFull {
                        capacity: lane.queue_cap,
                    },
                    mpsc::TrySendError::Disconnected(_) => Error::ServerClosed,
                })
            }
        });
        match sent {
            Ok(_) => {
                lane.counters.admitted();
                self.fair.add(lane.fair_id, lane.weight);
                Ok(RouterTicket { rx, done: None })
            }
            Err(e) => {
                if matches!(e, Error::QueueFull { .. }) {
                    lane.counters.rejected.fetch_add(1, Ordering::Relaxed);
                }
                Err(e)
            }
        }
    }

    fn stats(&self) -> RouterStats {
        let lanes = relock(self.lanes.read());
        let mut models = BTreeMap::new();
        let mut shared = 0;
        for (name, lane) in lanes.iter() {
            if lane.cache_shared {
                shared += 1;
            }
            models.insert(
                name.clone(),
                ModelStats {
                    serve: lane.counters.snapshot(lane.gate.version()),
                    deadline_missed: lane.deadline_missed.load(Ordering::Relaxed),
                    wait_p50: lane.counters.waits.quantile(0.5),
                    wait_p99: lane.counters.waits.quantile(0.99),
                    cache_shared: lane.cache_shared,
                    optical_stages: lane.optical_stages,
                },
            );
        }
        RouterStats {
            models,
            cache_shared_deployments: shared,
        }
    }

    fn shutdown_all(&self) -> Vec<(String, InferenceEngine)> {
        self.closed.store(true, Ordering::SeqCst);
        let lanes: Vec<(String, Arc<Lane>)> = {
            let mut map = relock(self.lanes.write());
            // BTreeMap iteration is already name-ordered; no sort needed
            // for a deterministic shutdown sequence.
            std::mem::take(&mut *map).into_iter().collect()
        };
        lanes
            .into_iter()
            .filter_map(|(name, lane)| lane.shutdown().map(|engine| (name, engine)))
            .collect()
    }
}

/// Per-model slice of a [`RouterStats`] snapshot.
#[derive(Clone, Debug)]
pub struct ModelStats {
    /// The lane's serving counters, in the exact [`ServerStats`] shape
    /// the single-model server reports (queue depth and max wait
    /// included).
    pub serve: ServerStats,
    /// Requests rejected for a passed deadline — at admission or at
    /// flush time.
    pub deadline_missed: u64,
    /// Median admission-to-flush queue wait (log₂-bucket upper bound).
    pub wait_p50: Duration,
    /// 99th-percentile admission-to-flush queue wait (log₂-bucket upper
    /// bound).
    pub wait_p99: Duration,
    /// Whether this model's registration was served entirely from the
    /// process-wide deploy cache (it shares kernels with an earlier
    /// deployment of the same weights).
    pub cache_shared: bool,
    /// The deployment's optical stage count — its scheduling weight in
    /// the fair-share split of the worker budget.
    pub optical_stages: usize,
}

/// A snapshot of every lane's counters plus router-wide aggregates.
#[derive(Clone, Debug, Default)]
pub struct RouterStats {
    /// Per-model stats, keyed by registered name.
    pub models: BTreeMap<String, ModelStats>,
    /// How many currently registered models were deployed entirely from
    /// the shared cache.
    pub cache_shared_deployments: u64,
}

/// Configures and creates a [`Router`]; see [`Router::builder`]. The
/// flush policy applies to every lane the router registers.
#[derive(Clone, Copy, Debug)]
pub struct RouterBuilder {
    max_batch: usize,
    max_wait: Duration,
    queue_cap: usize,
    confidence: Option<Confidence>,
}

impl Default for RouterBuilder {
    fn default() -> Self {
        RouterBuilder {
            max_batch: 64,
            max_wait: Duration::from_millis(1),
            queue_cap: 1024,
            confidence: None,
        }
    }
}

impl RouterBuilder {
    /// Flush a lane's micro-batch at this many samples (clamped to ≥ 1;
    /// default 64).
    pub fn max_batch(mut self, n: usize) -> Self {
        self.max_batch = n.max(1);
        self
    }

    /// Flush once a lane's oldest queued request has waited this long
    /// (default 1 ms; clamped to ≤ 1 h). A queued deadline that would
    /// expire sooner cuts the window short.
    pub fn max_wait(mut self, d: Duration) -> Self {
        self.max_wait = d.min(Duration::from_secs(3600));
        self
    }

    /// Bound of each lane's admission queue (clamped to ≥ 1; default
    /// 1024).
    pub fn queue_cap(mut self, n: usize) -> Self {
        self.queue_cap = n.max(1);
        self
    }

    /// Installs an abstention [`Confidence`] policy on every lane.
    pub fn confidence(mut self, c: Confidence) -> Self {
        self.confidence = Some(c);
        self
    }

    /// Creates the (initially empty) router.
    pub fn build(self) -> Router {
        Router {
            core: Arc::new(RouterCore {
                lanes: RwLock::new(BTreeMap::new()),
                policy: LanePolicy {
                    max_batch: self.max_batch,
                    max_wait: self.max_wait,
                    confidence: self.confidence,
                },
                queue_cap: self.queue_cap,
                closed: AtomicBool::new(false),
                fair: Arc::new(FairShare::default()),
            }),
        }
    }
}

/// The multi-model serving router: one admission layer over N named,
/// runtime-registered model deployments, each served by its own
/// EDF-batching lane. See the [module docs](crate::router) for the
/// dataflow and contracts.
///
/// ```
/// use oplixnet::router::{Priority, Router, RouterRequest};
/// use oplixnet::zoo::{build_fcnn, FcnnConfig, ModelVariant};
/// use oplix_photonics::decoder::DecoderKind;
/// use oplix_photonics::svd_map::MeshStyle;
/// use oplix_linalg::Complex64;
/// use rand::{rngs::StdRng, SeedableRng};
/// use std::time::Duration;
///
/// let mut rng = StdRng::seed_from_u64(11);
/// let variant = ModelVariant::Split(DecoderKind::Merge);
/// let small = build_fcnn(&FcnnConfig { input: 4, hidden: 4, classes: 2 }, variant, &mut rng);
/// let large = build_fcnn(&FcnnConfig { input: 6, hidden: 5, classes: 3 }, variant, &mut rng);
///
/// let router = Router::builder().max_batch(16).build();
/// router.register("small", &small, variant.detection(), MeshStyle::Clements).unwrap();
/// router.register("large", &large, variant.detection(), MeshStyle::Clements).unwrap();
///
/// let client = router.client();
/// let a = client
///     .submit(RouterRequest::new("small", vec![Complex64::ONE; 4]).priority(Priority::Interactive))
///     .unwrap();
/// let b = client
///     .submit(RouterRequest::new("large", vec![Complex64::i(); 6]).deadline_in(Duration::from_secs(5)))
///     .unwrap();
/// assert!(a.wait().is_ok() && b.wait().is_ok());
///
/// let stats = router.stats();
/// assert_eq!(stats.models.len(), 2);
/// let engines = router.shutdown(); // drains every lane, hands the engines back
/// assert_eq!(engines.len(), 2);
/// ```
pub struct Router {
    core: Arc<RouterCore>,
}

impl Router {
    /// Starts configuring a router; finish with [`RouterBuilder::build`].
    pub fn builder() -> RouterBuilder {
        RouterBuilder::default()
    }

    /// Registers a model under `name`, deploying `net` through the
    /// process-wide deploy cache (two registrations over identical
    /// weights share one cached decomposition) and spawning its lane.
    ///
    /// # Errors
    ///
    /// [`Error::DuplicateModel`] if `name` is already registered,
    /// [`Error::Deploy`] if the network cannot be deployed,
    /// [`Error::ServerClosed`] after shutdown.
    pub fn register(
        &self,
        name: impl Into<String>,
        net: &Network,
        detection: DeployedDetection,
        style: MeshStyle,
    ) -> Result<(), Error> {
        let (hits0, miss0) = crate::deploy::thread_cache_counts();
        let engine = InferenceEngine::from_network(net, detection, style)?;
        let (hits1, miss1) = crate::deploy::thread_cache_counts();
        // Fully cache-served deployment: at least one hit and zero
        // misses on this thread during the deploy.
        self.register_with(name.into(), engine, miss1 == miss0 && hits1 > hits0)
    }

    /// [`Router::register`] for CNN bodies that need an explicit input
    /// shape (see [`InferenceEngine::from_network_shaped`]).
    ///
    /// # Errors
    ///
    /// As [`Router::register`].
    pub fn register_shaped(
        &self,
        name: impl Into<String>,
        net: &Network,
        input_shape: Option<(usize, usize, usize)>,
        detection: DeployedDetection,
        style: MeshStyle,
    ) -> Result<(), Error> {
        let (hits0, miss0) = crate::deploy::thread_cache_counts();
        let engine = InferenceEngine::from_network_shaped(net, input_shape, detection, style)?;
        let (hits1, miss1) = crate::deploy::thread_cache_counts();
        self.register_with(name.into(), engine, miss1 == miss0 && hits1 > hits0)
    }

    /// Registers an already-built engine under `name` (no cache
    /// involvement; [`ModelStats::cache_shared`] reports `false`).
    ///
    /// # Errors
    ///
    /// [`Error::DuplicateModel`] if `name` is already registered,
    /// [`Error::ServerClosed`] after shutdown.
    pub fn register_engine(
        &self,
        name: impl Into<String>,
        engine: InferenceEngine,
    ) -> Result<(), Error> {
        self.register_with(name.into(), engine, false)
    }

    fn register_with(
        &self,
        name: String,
        engine: InferenceEngine,
        cache_shared: bool,
    ) -> Result<(), Error> {
        let core = &self.core;
        if core.closed.load(Ordering::SeqCst) {
            return Err(Error::ServerClosed);
        }
        let mut lanes = relock(core.lanes.write());
        if lanes.contains_key(&name) {
            return Err(Error::DuplicateModel { model: name });
        }
        let input_dim = engine.input_dim();
        let optical_stages = engine.deployed().num_optical_stages();
        let weight = optical_stages.max(1) as u64;
        let fair_id = core.fair.register();
        let (tx, rx) = mpsc::sync_channel::<LaneEnvelope>(core.queue_cap);
        let stop = Arc::new(AtomicBool::new(false));
        let counters = Arc::new(Counters::default());
        let gate = Arc::new(VersionGate::new());
        let deadline_missed = Arc::new(AtomicU64::new(0));
        let handle = {
            let stop = Arc::clone(&stop);
            let counters = Arc::clone(&counters);
            let deadline_missed = Arc::clone(&deadline_missed);
            let fair = Arc::clone(&core.fair);
            let policy = core.policy;
            thread::Builder::new()
                .name(format!("oplix-route-{name}"))
                .spawn(move || {
                    lane_batcher(
                        engine,
                        rx,
                        policy,
                        stop,
                        counters,
                        deadline_missed,
                        fair,
                        fair_id,
                        weight,
                    )
                })
                .expect("failed to spawn a router lane batcher thread")
        };
        lanes.insert(
            name,
            Arc::new(Lane {
                tx: Mutex::new(Some(tx)),
                stop,
                counters,
                gate,
                deadline_missed,
                input_dim,
                queue_cap: core.queue_cap,
                weight,
                fair_id,
                optical_stages,
                cache_shared,
                handle: Mutex::new(Some(handle)),
            }),
        );
        Ok(())
    }

    /// Hot-swaps model `name`'s deployment: `net` deploys through the
    /// process-wide deploy cache (outside the lane's admission path —
    /// serving never pauses for the SVD), then a swap control rides the
    /// lane queue and applies at a micro-batch boundary, exactly like
    /// [`crate::serve::Server::swap`]. Requests admitted before the swap
    /// are served by the old engine, requests admitted after by the new
    /// one ([`Served::version`] says which). The returned [`SwapTicket`]
    /// resolves to the retired engine once the switch lands.
    ///
    /// # Errors
    ///
    /// [`Error::UnknownModel`] if `name` is not registered,
    /// [`Error::ShapeMismatch`] if the replacement's input width differs
    /// from the lane's, [`Error::Deploy`] if `net` cannot be deployed,
    /// [`Error::ServerClosed`] if the lane (or router) is shutting down.
    pub fn swap_model(
        &self,
        name: &str,
        net: &Network,
        detection: DeployedDetection,
        style: MeshStyle,
    ) -> Result<SwapTicket, Error> {
        let engine = InferenceEngine::from_network(net, detection, style)?;
        self.swap_model_engine(name, engine)
    }

    /// [`Router::swap_model`] over an already-built engine (no cache
    /// involvement).
    ///
    /// # Errors
    ///
    /// As [`Router::swap_model`], minus [`Error::Deploy`]. On error the
    /// candidate engine is dropped.
    pub fn swap_model_engine(
        &self,
        name: &str,
        engine: InferenceEngine,
    ) -> Result<SwapTicket, Error> {
        let lane = relock(self.core.lanes.read())
            .get(name)
            .cloned()
            .ok_or_else(|| Error::UnknownModel {
                model: name.to_string(),
            })?;
        if engine.input_dim() != lane.input_dim {
            return Err(Error::ShapeMismatch {
                expected: lane.input_dim,
                got: engine.input_dim(),
                what: "candidate input width",
            });
        }
        let tx = relock(lane.tx.lock()).clone().ok_or(Error::ServerClosed)?;
        let (reply, rx) = mpsc::channel();
        lane.gate.barrier(|state| {
            let version = state.current + 1;
            tx.send(LaneEnvelope::Control(Control::Swap {
                engine: Box::new(engine),
                version,
                reply,
            }))
            .map_err(|_| Error::ServerClosed)?;
            state.current = version;
            Ok(())
        })?;
        Ok(SwapTicket { rx })
    }

    /// Deregisters `name`: admission to the lane closes, every queued
    /// request is served (drain, not drop), and the model's
    /// **currently serving** engine comes back out. Racing submissions
    /// resolve to typed errors ([`Error::UnknownModel`] or
    /// [`Error::ServerClosed`]); none hang. A [`Router::swap_model`]
    /// still queued when the drain begins is aborted cleanly: its
    /// replacement engine comes back through the [`SwapTicket`] as
    /// [`crate::serve::SwapOutcome::Aborted`] (after serving any
    /// already-admitted requests stamped with its version), and the
    /// engine returned here is the one that was serving.
    ///
    /// # Errors
    ///
    /// [`Error::UnknownModel`] if `name` is not registered.
    pub fn deregister(&self, name: &str) -> Result<InferenceEngine, Error> {
        let lane = relock(self.core.lanes.write())
            .remove(name)
            .ok_or_else(|| Error::UnknownModel {
                model: name.to_string(),
            })?;
        // A lane still in the table has never been shut down (shutdown_all
        // empties the table first), so this is reachable only if that
        // invariant breaks — degrade to the typed error rather than panic.
        lane.shutdown().ok_or(Error::ServerClosed)
    }

    /// The registered model names, sorted.
    pub fn models(&self) -> Vec<String> {
        // BTreeMap keys iterate in name order; no extra sort needed.
        relock(self.core.lanes.read()).keys().cloned().collect()
    }

    /// The sample width model `name` expects, if registered.
    pub fn input_dim(&self, name: &str) -> Option<usize> {
        relock(self.core.lanes.read())
            .get(name)
            .map(|l| l.input_dim)
    }

    /// A new cloneable client handle for submitting routed requests.
    pub fn client(&self) -> RouterClient {
        RouterClient {
            core: Arc::clone(&self.core),
        }
    }

    /// Submits one routed request, blocking while the target lane's
    /// queue is at capacity. Equivalent to `self.client().submit(req)`.
    ///
    /// # Errors
    ///
    /// See [`RouterClient::submit`].
    pub fn submit(&self, req: RouterRequest) -> Result<RouterTicket, Error> {
        self.core.submit_inner(req, true)
    }

    /// A snapshot of every lane's counters.
    pub fn stats(&self) -> RouterStats {
        self.core.stats()
    }

    /// Shuts every lane down (draining — every admitted ticket resolves)
    /// and returns the engines, sorted by model name. Submissions racing
    /// the shutdown resolve to [`Error::ServerClosed`].
    pub fn shutdown(self) -> Vec<(String, InferenceEngine)> {
        self.core.shutdown_all()
    }
}

impl Drop for Router {
    /// Dropping the handle shuts every lane down (draining) and discards
    /// the engines.
    fn drop(&mut self) {
        let _ = self.core.shutdown_all();
    }
}

impl std::fmt::Debug for Router {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Router")
            .field("models", &self.models())
            .finish()
    }
}

/// A cheap, cloneable handle for submitting routed requests; clones can
/// submit from independent threads and outlive each other (but not the
/// router's shutdown, which resolves racing submissions to typed
/// errors).
#[derive(Clone)]
pub struct RouterClient {
    core: Arc<RouterCore>,
}

impl RouterClient {
    /// Submits one routed request, blocking while the target lane's
    /// queue is at capacity (backpressure). Returns a ticket resolving
    /// once the lane's EDF batcher has served the sample.
    ///
    /// # Errors
    ///
    /// [`Error::UnknownModel`] for an unregistered target,
    /// [`Error::ShapeMismatch`] for a wrong sample width,
    /// [`Error::DeadlineExceeded`] for an already-passed deadline,
    /// [`Error::ServerClosed`] after shutdown.
    pub fn submit(&self, req: RouterRequest) -> Result<RouterTicket, Error> {
        self.core.submit_inner(req, true)
    }

    /// Non-blocking [`RouterClient::submit`]: a full lane queue surfaces
    /// as [`Error::QueueFull`] instead of blocking.
    ///
    /// # Errors
    ///
    /// [`Error::QueueFull`] on backpressure, plus the
    /// [`RouterClient::submit`] conditions.
    pub fn try_submit(&self, req: RouterRequest) -> Result<RouterTicket, Error> {
        self.core.submit_inner(req, false)
    }

    /// The sample width model `name` expects, if registered.
    pub fn input_dim(&self, name: &str) -> Option<usize> {
        relock(self.core.lanes.read())
            .get(name)
            .map(|l| l.input_dim)
    }
}

impl std::fmt::Debug for RouterClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RouterClient").finish()
    }
}

/// Pops one flush batch off `pending` in EDF order: up to `max_batch`
/// live entries, plus every popped entry whose deadline is already past
/// `now` (returned separately for rejection — expired entries do not
/// occupy batch slots). Pure, so flush-time expiry is unit-testable
/// without real timing.
#[allow(clippy::type_complexity)]
fn take_flush_batch(
    pending: &mut EdfQueue<LaneRequest>,
    max_batch: usize,
    now: Instant,
) -> (Vec<EdfItem<LaneRequest>>, Vec<(LaneRequest, Duration)>) {
    let mut batch = Vec::new();
    let mut expired = Vec::new();
    while batch.len() < max_batch {
        let Some(item) = pending.pop() else { break };
        match item.deadline {
            Some(deadline) if deadline <= now => {
                expired.push((item.value, now - deadline));
            }
            _ => batch.push(item),
        }
    }
    (batch, expired)
}

/// Counts and replies one lane response (the router-side analogue of the
/// serve module's `respond`, plus the fair-share bookkeeping).
fn lane_respond(
    counters: &Counters,
    fair: &FairShare,
    fair_id: u64,
    weight: u64,
    request: &LaneRequest,
    outcome: Result<Served, Error>,
) {
    counters.served.fetch_add(1, Ordering::Relaxed);
    counters.depth.fetch_sub(1, Ordering::Relaxed);
    fair.sub(fair_id, weight);
    if matches!(
        outcome,
        Ok(Served {
            prediction: Prediction::Abstain { .. },
            ..
        })
    ) {
        counters.abstained.fetch_add(1, Ordering::Relaxed);
    }
    // A dropped ticket just means nobody is listening; serving continues.
    let _ = request.reply.send(outcome);
}

/// Serves one popped EDF flush batch through the lane's rack, grouped by
/// stamped version so every request is served by exactly the engine it
/// was admitted under (single-version in steady state; split around a
/// swap boundary).
#[allow(clippy::too_many_arguments)]
fn lane_serve_batch(
    rack: &mut EngineRack,
    policy: &LanePolicy,
    batch: Vec<EdfItem<LaneRequest>>,
    rows: &mut Vec<Complex64>,
    counters: &Counters,
    fair: &FairShare,
    fair_id: u64,
    weight: u64,
    flush_seq: u64,
    now: Instant,
    share: usize,
) {
    let mut batch = batch;
    while !batch.is_empty() {
        let version = batch[0].value.version;
        let (group, rest): (Vec<_>, Vec<_>) = batch
            .into_iter()
            .partition(|item| item.value.version == version);
        batch = rest;
        counters.batches.fetch_add(1, Ordering::Relaxed);
        counters
            .batch_fill
            .fetch_add(group.len() as u64, Ordering::Relaxed);
        rows.clear();
        let mut waits = Vec::with_capacity(group.len());
        for item in &group {
            let waited = now.saturating_duration_since(item.value.enqueued_at);
            counters.waits.record(waited);
            waits.push(waited);
            rows.extend_from_slice(&item.value.fields);
        }
        let confidence = rack.confidence(policy.confidence);
        let Some(engine) = rack.engine_for(version) else {
            // Unreachable by construction (every stamped version has a
            // rack slot until its last ticket resolves), but never
            // strand a ticket.
            for item in &group {
                lane_respond(
                    counters,
                    fair,
                    fair_id,
                    weight,
                    &item.value,
                    Err(Error::ServerClosed),
                );
            }
            continue;
        };
        if engine.num_workers() != share {
            engine.set_num_workers(share);
        }
        let emit = move |logits: &[f64]| decide(confidence, logits);
        match engine.serve_rows(rows, &emit) {
            Ok(predictions) => {
                for ((item, prediction), waited) in group.iter().zip(predictions).zip(waits) {
                    lane_respond(
                        counters,
                        fair,
                        fair_id,
                        weight,
                        &item.value,
                        Ok(Served {
                            prediction,
                            flush_seq,
                            waited,
                            version,
                        }),
                    );
                }
            }
            Err(_) => {
                // Isolate the poisoned sample(s), like the single-model
                // batcher: serve each request on its own.
                for (item, waited) in group.iter().zip(waits) {
                    let outcome = engine
                        .serve_rows(&item.value.fields, &emit)
                        .map(|mut v| v.remove(0))
                        .map(|prediction| Served {
                            prediction,
                            flush_seq,
                            waited,
                            version,
                        });
                    lane_respond(counters, fair, fair_id, weight, &item.value, outcome);
                }
            }
        }
    }
}

/// The lane batcher thread body: coalesce into an [`EdfQueue`], flush on
/// `max_batch` / `max_wait` / an imminent deadline, serve in EDF order
/// through the lane's rack with a fair-share worker count. Swap controls
/// ride the same channel as requests; when one arrives, everything
/// admitted before it is flushed first (the micro-batch boundary the
/// swap is atomic at), then the control applies — or, if the lane began
/// draining, the swap aborts and its replacement is handed back at exit.
/// On shutdown, drain to empty so no admitted ticket is lost.
#[allow(clippy::too_many_arguments)]
fn lane_batcher(
    engine: InferenceEngine,
    rx: mpsc::Receiver<LaneEnvelope>,
    policy: LanePolicy,
    stop: Arc<AtomicBool>,
    counters: Arc<Counters>,
    deadline_missed: Arc<AtomicU64>,
    fair: Arc<FairShare>,
    fair_id: u64,
    weight: u64,
) -> InferenceEngine {
    // Lane batchers are resident service threads, like the single-model
    // server's: claim one slot of the shared worker budget.
    let _slot = crate::pool::reserve_service_slot();
    let mut rack = EngineRack::new(engine);
    let mut pending: EdfQueue<LaneRequest> = EdfQueue::new();
    let mut rows: Vec<Complex64> = Vec::new();
    let mut flush_seq: u64 = 0;
    loop {
        let mut control: Option<Control> = None;
        if pending.is_empty() {
            // Park for the first envelope of the next batch.
            let first = loop {
                if stop.load(Ordering::SeqCst) {
                    // Draining: serve whatever is still queued, then exit.
                    break rx.try_recv().ok();
                }
                match rx.recv_timeout(IDLE_POLL) {
                    Ok(e) => break Some(e),
                    Err(mpsc::RecvTimeoutError::Timeout) => continue,
                    Err(mpsc::RecvTimeoutError::Disconnected) => break None,
                }
            };
            let Some(first) = first else { break };
            match first {
                LaneEnvelope::Request(r) => {
                    let arrived = r.enqueued_at;
                    pending.push(r.deadline, r.priority, arrived, r);
                }
                LaneEnvelope::Control(c) => control = Some(c),
            }
        }

        // Coalesce until the batch fills, the oldest request's window
        // closes, a queued deadline would expire inside the window — an
        // imminent deadline cuts the window short — or a swap control
        // arrives. The spin-then-park straggler collection matches the
        // single-model batcher.
        const SPIN_WAIT: Duration = Duration::from_micros(256);
        if let Some(oldest) = pending.oldest_arrival().filter(|_| control.is_none()) {
            let window_end = oldest + policy.max_wait;
            let spin_until = Instant::now() + SPIN_WAIT.min(policy.max_wait);
            'coalesce: loop {
                // Drain the whole backlog, not just enough to fill one
                // batch: flush membership must be decided by the EDF
                // queue, not by arrival order. A request left in the
                // channel is invisible to `take_flush_batch` and would
                // make batch composition FIFO.
                loop {
                    match rx.try_recv() {
                        Ok(LaneEnvelope::Request(r)) => {
                            let arrived = r.enqueued_at;
                            pending.push(r.deadline, r.priority, arrived, r);
                        }
                        Ok(LaneEnvelope::Control(c)) => {
                            control = Some(c);
                            break 'coalesce;
                        }
                        Err(_) => break,
                    }
                }
                if pending.len() >= policy.max_batch || stop.load(Ordering::SeqCst) {
                    break;
                }
                let now = Instant::now();
                if now >= window_end {
                    break;
                }
                if pending.earliest_deadline().is_some_and(|d| d <= window_end) {
                    break;
                }
                if now < spin_until {
                    thread::yield_now();
                } else {
                    let nap = (window_end - now).min(IDLE_POLL);
                    match rx.recv_timeout(nap) {
                        Ok(LaneEnvelope::Request(r)) => {
                            let arrived = r.enqueued_at;
                            pending.push(r.deadline, r.priority, arrived, r);
                        }
                        Ok(LaneEnvelope::Control(c)) => {
                            control = Some(c);
                            break 'coalesce;
                        }
                        Err(mpsc::RecvTimeoutError::Timeout) => {}
                        Err(mpsc::RecvTimeoutError::Disconnected) => break,
                    }
                }
            }
        }

        // Flush: pop in EDF order, reject what already expired, serve
        // the rest with this lane's fair share of the worker budget.
        // With a control in hand, flush *everything* admitted before it
        // (possibly several batches) — the FIFO channel guarantees every
        // old-version request precedes the control, so after this loop
        // no request still needs the engine the control may retire.
        loop {
            let now = Instant::now();
            let (batch, expired) = take_flush_batch(&mut pending, policy.max_batch, now);
            for (request, missed_by) in expired {
                deadline_missed.fetch_add(1, Ordering::Relaxed);
                counters.waits.record(now - request.enqueued_at);
                lane_respond(
                    &counters,
                    &fair,
                    fair_id,
                    weight,
                    &request,
                    Err(Error::DeadlineExceeded { missed_by }),
                );
            }
            // A flush in which *every* popped request had expired leaves
            // an empty batch: skip it entirely — no `batches` increment,
            // no zero-sample engine call, no flush sequence number spent.
            if !batch.is_empty() {
                flush_seq += 1;
                let share = fair.share_for(fair_id, crate::pool::jobs());
                lane_serve_batch(
                    &mut rack, &policy, batch, &mut rows, &counters, &fair, fair_id, weight,
                    flush_seq, now, share,
                );
                counters.publish_stages(rack.stage_stats());
            }
            if control.is_none() || pending.is_empty() {
                break;
            }
        }
        if let Some(c) = control {
            rack.apply(c, stop.load(Ordering::SeqCst), &counters);
        }
    }
    fair.deregister(fair_id);
    rack.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lane_request(deadline: Option<Instant>) -> LaneRequest {
        let (reply, _rx) = mpsc::channel();
        LaneRequest {
            fields: Vec::new(),
            reply,
            enqueued_at: Instant::now(),
            deadline,
            priority: Priority::Standard,
            version: 1,
        }
    }

    #[test]
    fn edf_orders_by_deadline_then_priority_then_arrival() {
        let now = Instant::now();
        let mut q = EdfQueue::new();
        q.push(None, Priority::Standard, now, 0);
        q.push(Some(now + Duration::from_secs(9)), Priority::Batch, now, 1);
        q.push(
            Some(now + Duration::from_secs(9)),
            Priority::Interactive,
            now,
            2,
        );
        q.push(Some(now + Duration::from_secs(1)), Priority::Batch, now, 3);
        q.push(None, Priority::Interactive, now, 4);
        q.push(None, Priority::Standard, now, 5);

        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|e| e.value)).collect();
        // Deadlines first (earliest wins; priority breaks ties), then
        // deadline-less by priority, then arrival.
        assert_eq!(order, [3, 2, 1, 4, 0, 5]);
    }

    #[test]
    fn edf_peeks_earliest_deadline_and_oldest_arrival() {
        let now = Instant::now();
        let mut q = EdfQueue::new();
        assert!(q.earliest_deadline().is_none());
        assert!(q.oldest_arrival().is_none());
        q.push(None, Priority::Standard, now + Duration::from_secs(2), "x");
        assert!(q.earliest_deadline().is_none(), "no entry carries one");
        q.push(
            Some(now + Duration::from_secs(30)),
            Priority::Standard,
            now,
            "y",
        );
        assert_eq!(q.earliest_deadline(), Some(now + Duration::from_secs(30)));
        assert_eq!(q.oldest_arrival(), Some(now));
    }

    #[test]
    fn take_flush_batch_rejects_expired_without_spending_slots() {
        let now = Instant::now();
        let mut pending = EdfQueue::new();
        // Three expired (deadline at or before `now`), two live.
        for i in 0..3 {
            let dl = now - Duration::from_millis(5 + i);
            pending.push(Some(dl), Priority::Standard, now, lane_request(Some(dl)));
        }
        let live = now + Duration::from_secs(60);
        for _ in 0..2 {
            pending.push(
                Some(live),
                Priority::Standard,
                now,
                lane_request(Some(live)),
            );
        }
        let (batch, expired) = take_flush_batch(&mut pending, 2, now);
        assert_eq!(expired.len(), 3, "expired entries are popped eagerly");
        assert_eq!(batch.len(), 2, "expired entries do not occupy batch slots");
        for (_, missed_by) in &expired {
            assert!(*missed_by >= Duration::from_millis(5));
        }
        assert!(pending.is_empty());
    }

    #[test]
    fn fair_shares_split_jobs_by_weighted_depth() {
        // Sole active lane takes the whole budget.
        assert_eq!(fair_shares(8, &[10]), [8]);
        // Idle lanes (weight 0) get no workers; live ones split the rest.
        assert_eq!(fair_shares(8, &[0, 40]), [0, 8]);
        // Proportional split of the budget beyond the per-lane floor.
        assert_eq!(fair_shares(8, &[20, 20]), [4, 4]);
        // A heavily loaded lane dominates, but every live lane keeps the
        // one worker it is.
        assert_eq!(fair_shares(5, &[100, 1, 1, 1]), [2, 1, 1, 1]);
        // Largest-remainder rounding: remainders 2/3 and 1/3 of the one
        // spare worker — the larger remainder (lower index on ties) wins.
        assert_eq!(fair_shares(3, &[2, 1]), [2, 1]);
        // Degenerate budget still grants each live lane its own worker.
        assert_eq!(fair_shares(0, &[5, 5]), [1, 1]);
        // All idle: nothing to grant.
        assert_eq!(fair_shares(8, &[0, 0]), [0, 0]);
    }

    #[test]
    fn fair_shares_never_oversubscribe_when_lanes_exceed_jobs() {
        // The regression this allocator fixes: under the old per-lane
        // `clamp(1, jobs)`, 12 idle-but-nonempty lanes against a 4-worker
        // budget claimed 12 shards each sized up to `jobs`. The summed
        // allocation must now stay within max(jobs, live lanes): the only
        // oversubscription left is the floor that serving lanes
        // physically occupy (each lane thread is itself one worker).
        for jobs in [1usize, 2, 4, 7] {
            for lanes in [1usize, 2, 5, 12] {
                let weights: Vec<u64> = (0..lanes as u64).map(|i| i % 3 + 1).collect();
                let shares = fair_shares(jobs, &weights);
                let live = weights.iter().filter(|w| **w > 0).count();
                let sum: usize = shares.iter().sum();
                assert!(
                    sum <= jobs.max(live),
                    "jobs={jobs} lanes={lanes}: Σ shares {sum} > max(jobs, live) {}",
                    jobs.max(live)
                );
                assert_eq!(sum, jobs.max(1).max(live), "budget is fully spent");
                for (i, &s) in shares.iter().enumerate() {
                    assert!(s >= 1, "live lane {i} keeps one worker");
                    assert!(s <= jobs.max(1), "lane {i} share {s} exceeds the budget");
                }
            }
        }
    }

    #[test]
    fn fair_share_registry_tracks_admissions_and_responses() {
        let fair = FairShare::default();
        let a = fair.register();
        let b = fair.register();
        // Nothing queued anywhere: each lane still runs as itself.
        assert_eq!(fair.share_for(a, 8), 1);
        // Lane `a` takes the whole budget while it is the only live one.
        fair.add(a, 3);
        assert_eq!(fair.share_for(a, 8), 8);
        // A second live lane splits the spare budget by weighted depth.
        fair.add(b, 3);
        assert_eq!(fair.share_for(a, 8), 4);
        assert_eq!(fair.share_for(b, 8), 4);
        // Responses hand the weight back; deregistration frees the slot.
        fair.sub(b, 3);
        assert_eq!(fair.share_for(a, 8), 8);
        fair.deregister(a);
        assert_eq!(fair.share_for(a, 8), 1, "unknown lanes degrade to 1");
    }
}
