//! The workspace-wide typed error for the OplixNet pipeline and engine.
//!
//! Every public API path that can fail on recoverable conditions — bad
//! dataset geometry for an assignment, an undeployable network body, a
//! shape mismatch between a query batch and a deployed mesh — returns
//! [`Error`] instead of panicking, so serving-side callers can degrade
//! gracefully.

use crate::deploy::DeployError;
use oplix_datasets::assign::AssignError;

/// Everything that can go wrong in an OplixNet pipeline or engine call.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Error {
    /// A real-to-complex assignment could not be applied to the dataset
    /// geometry.
    Assign(AssignError),
    /// A trained network could not be deployed onto photonic hardware.
    Deploy(DeployError),
    /// A query's shape does not match what the deployed hardware expects.
    ShapeMismatch {
        /// What the hardware expects (e.g. the first stage fan-in).
        expected: usize,
        /// What the caller provided.
        got: usize,
        /// Which quantity mismatched.
        what: &'static str,
    },
    /// A query produced non-finite logits (NaN/∞ in the input fields
    /// poisons the photodiode detection).
    NonFiniteLogits {
        /// Batch index of the offending sample.
        sample: usize,
    },
    /// A stage received an empty dataset or batch.
    EmptyInput {
        /// The stage that rejected the input.
        stage: &'static str,
    },
    /// A stage's configuration is inconsistent with its input artifact.
    Stage {
        /// The stage that failed.
        stage: &'static str,
        /// Human-readable description of the inconsistency.
        message: String,
    },
    /// A serving request was rejected because the admission queue is at
    /// capacity — backpressure, not failure; retry or block on
    /// [`crate::serve::Client::submit`].
    QueueFull {
        /// The configured queue bound.
        capacity: usize,
    },
    /// The serving front end shut down before (or while) the request
    /// could be served.
    ServerClosed,
    /// A routed request named a model the router does not (or no longer)
    /// serve.
    UnknownModel {
        /// The model name the request carried.
        model: String,
    },
    /// A model registration reused a name the router already serves;
    /// deregister the old deployment first.
    DuplicateModel {
        /// The contested model name.
        model: String,
    },
    /// The request's deadline had already passed — at admission, or by
    /// the time its lane's EDF batcher popped it — so it was rejected
    /// instead of wasting mesh cycles on a result nobody can use.
    DeadlineExceeded {
        /// How far past the deadline the request was when rejected.
        missed_by: std::time::Duration,
    },
    /// A version change (hot swap or a second canary) was requested while
    /// a canary is already live; `promote` or `rollback` the active
    /// candidate first.
    CanaryActive,
    /// `promote` or `rollback` was called with no canary live.
    NoCanary,
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::Assign(e) => write!(f, "assignment failed: {e}"),
            Error::Deploy(e) => write!(f, "deployment failed: {e}"),
            Error::ShapeMismatch {
                expected,
                got,
                what,
            } => {
                write!(
                    f,
                    "shape mismatch: expected {what} of {expected}, got {got}"
                )
            }
            Error::NonFiniteLogits { sample } => {
                write!(f, "sample {sample} produced non-finite logits")
            }
            Error::EmptyInput { stage } => write!(f, "stage `{stage}` received empty input"),
            Error::Stage { stage, message } => write!(f, "stage `{stage}` failed: {message}"),
            Error::QueueFull { capacity } => {
                write!(f, "serving queue is at capacity ({capacity} requests)")
            }
            Error::ServerClosed => write!(f, "serving front end has shut down"),
            Error::UnknownModel { model } => {
                write!(f, "router serves no model named `{model}`")
            }
            Error::DuplicateModel { model } => {
                write!(f, "router already serves a model named `{model}`")
            }
            Error::DeadlineExceeded { missed_by } => {
                write!(
                    f,
                    "request deadline exceeded (missed by {:.3} ms)",
                    missed_by.as_secs_f64() * 1e3
                )
            }
            Error::CanaryActive => {
                write!(
                    f,
                    "a canary is already live; promote or rollback before the next version change"
                )
            }
            Error::NoCanary => write!(f, "no canary is live to promote or rollback"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Assign(e) => Some(e),
            Error::Deploy(e) => Some(e),
            _ => None,
        }
    }
}

impl From<AssignError> for Error {
    fn from(e: AssignError) -> Self {
        Error::Assign(e)
    }
}

impl From<DeployError> for Error {
    fn from(e: DeployError) -> Self {
        Error::Deploy(e)
    }
}

/// Shorthand for results carrying the workspace error.
pub type Result<T, E = Error> = std::result::Result<T, E>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_nest_their_cause() {
        let e = Error::from(AssignError::OddHeight { height: 7 });
        assert!(e.to_string().contains("even height"));
        let e = Error::from(DeployError::Empty);
        assert!(e.to_string().contains("no weight layers"));
        assert!(std::error::Error::source(&e).is_some());
    }
}
