//! Property-based tests for the photonic hardware model.

use oplix_linalg::{CMatrix, Complex64};
use oplix_photonics::clements::decompose_clements;
use oplix_photonics::count::{mzi_count, reduction_ratio, DeviceCount};
use oplix_photonics::decoder::{differential_photodiode, CoherentDetector, DecoderKind};
use oplix_photonics::devices::Mzi;
use oplix_photonics::encoder::{ComplexEncoder, DcComplexEncoder, PsComplexEncoder};
use oplix_photonics::mesh::MziMesh;
use oplix_photonics::power::phase_power_mw;
use oplix_photonics::reck::decompose_reck;
use oplix_photonics::svd_map::{MeshStyle, PhotonicLayer};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn mzi_is_always_unitary(theta in -10.0f64..10.0, phi in -10.0f64..10.0) {
        prop_assert!(Mzi::new(0, theta, phi).transfer().is_unitary(1e-10));
    }

    #[test]
    fn mzi_conserves_energy(theta in -10.0f64..10.0, phi in -10.0f64..10.0,
                            a_re in -2.0f64..2.0, a_im in -2.0f64..2.0,
                            b_re in -2.0f64..2.0, b_im in -2.0f64..2.0) {
        let mut fields = [Complex64::new(a_re, a_im), Complex64::new(b_re, b_im)];
        let e_in: f64 = fields.iter().map(|z| z.norm_sqr()).sum();
        Mzi::new(0, theta, phi).apply(&mut fields);
        let e_out: f64 = fields.iter().map(|z| z.norm_sqr()).sum();
        prop_assert!((e_in - e_out).abs() < 1e-10 * (1.0 + e_in));
    }

    #[test]
    fn decompositions_reconstruct(seed in 0u64..2000, n in 1usize..12) {
        let mut rng = StdRng::seed_from_u64(seed);
        let u = CMatrix::random_unitary(n, &mut rng);
        for mesh in [decompose_reck(&u), decompose_clements(&u)] {
            prop_assert_eq!(mesh.mzi_count(), n * (n - 1) / 2);
            prop_assert!(mesh.matrix().max_abs_diff(&u) < 1e-8);
        }
    }

    #[test]
    fn mesh_propagation_is_linear(seed in 0u64..1000, k in -2.0f64..2.0) {
        let mut rng = StdRng::seed_from_u64(seed);
        let u = CMatrix::random_unitary(5, &mut rng);
        let mesh = decompose_clements(&u);
        let x: Vec<Complex64> = (0..5)
            .map(|_| Complex64::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)))
            .collect();
        let scaled: Vec<Complex64> = x.iter().map(|z| z.scale(k)).collect();
        let y1 = mesh.propagate(&scaled);
        let y2: Vec<Complex64> = mesh.propagate(&x).iter().map(|z| z.scale(k)).collect();
        for (a, b) in y1.iter().zip(&y2) {
            prop_assert!((*a - *b).abs() < 1e-9);
        }
    }

    #[test]
    fn svd_deployment_is_exact(seed in 0u64..1000, m in 1usize..6, n in 1usize..6) {
        let mut rng = StdRng::seed_from_u64(seed);
        let w = CMatrix::from_fn(m, n, |_, _| {
            Complex64::new(rng.gen_range(-3.0..3.0), rng.gen_range(-3.0..3.0))
        });
        let layer = PhotonicLayer::from_matrix(&w, MeshStyle::Reck);
        prop_assert!(layer.matrix().max_abs_diff(&w) < 1e-7);
        prop_assert_eq!(layer.device_count().mzis, mzi_count(m as u64, n as u64));
    }

    #[test]
    fn encoders_agree(a in -5.0f64..5.0, b in -5.0f64..5.0) {
        let dc = DcComplexEncoder::new().encode_pair(a, b);
        let ps = PsComplexEncoder::new().encode_pair(a, b);
        prop_assert!((dc - ps).abs() < 1e-9);
        prop_assert!((dc - Complex64::new(a, b)).abs() < 1e-9);
    }

    #[test]
    fn coherent_detection_inverts_encoding(a in -5.0f64..5.0, b in -5.0f64..5.0, r in 0.5f64..4.0) {
        let z = DcComplexEncoder::new().encode_pair(a, b);
        let (re, im) = CoherentDetector::new(r).detect(z);
        prop_assert!((re - a).abs() < 1e-8);
        prop_assert!((im - b).abs() < 1e-8);
    }

    #[test]
    fn differential_detection_is_antisymmetric(values in proptest::collection::vec(
        (-2.0f64..2.0, -2.0f64..2.0), 4..=4)) {
        let z: Vec<Complex64> = values.iter().map(|&(re, im)| Complex64::new(re, im)).collect();
        // Swapping the positive and negative diode banks negates the logits.
        let swapped: Vec<Complex64> = z[2..].iter().chain(&z[..2]).cloned().collect();
        let l1 = differential_photodiode(&z);
        let l2 = differential_photodiode(&swapped);
        for (a, b) in l1.iter().zip(&l2) {
            prop_assert!((a + b).abs() < 1e-10);
        }
    }

    #[test]
    fn phase_power_is_bounded_and_periodic(phi in -100.0f64..100.0) {
        let p = phase_power_mw(phi, 80.0);
        prop_assert!((0.0..80.0).contains(&p));
        let p2 = phase_power_mw(phi + std::f64::consts::TAU, 80.0);
        prop_assert!((p - p2).abs() < 1e-9);
    }

    #[test]
    fn mzi_count_monotone(m in 1u64..200, n in 1u64..200) {
        prop_assert!(mzi_count(m + 1, n) >= mzi_count(m, n));
        prop_assert!(mzi_count(m, n + 1) >= mzi_count(m, n));
        // Halving both dimensions reduces by at least ~70 % for sizes >= 8.
        if m >= 8 && n >= 8 {
            let red = reduction_ratio(mzi_count(m, n), mzi_count(m.div_ceil(2), n.div_ceil(2)));
            prop_assert!(red > 0.65, "m={m} n={n} red={red}");
        }
    }

    #[test]
    fn decoder_counts_are_consistent(n_in in 10u64..500, k in 2u64..50) {
        let merge = DecoderKind::Merge.extra_mzis(n_in, k);
        let coherent = DecoderKind::Coherent.extra_mzis(n_in, k);
        prop_assert_eq!(coherent, 0);
        prop_assert!(merge > 0);
        let dc = DeviceCount::from_mzis(merge);
        prop_assert_eq!(dc.dcs(), 2 * merge);
        prop_assert_eq!(dc.pss(), merge);
    }

    #[test]
    fn noise_keeps_mesh_unitary(seed in 0u64..500, sigma in 0.0f64..0.5) {
        let mut rng = StdRng::seed_from_u64(seed);
        let u = CMatrix::random_unitary(4, &mut rng);
        let mesh = decompose_clements(&u).with_phase_noise(sigma, &mut rng);
        prop_assert!(mesh.matrix().is_unitary(1e-9));
    }

    #[test]
    fn quantization_error_shrinks_with_bits(seed in 0u64..200) {
        let mut rng = StdRng::seed_from_u64(seed);
        let u = CMatrix::random_unitary(4, &mut rng);
        let mesh = decompose_clements(&u);
        let e6 = mesh.with_quantized_phases(6).matrix().max_abs_diff(&u);
        let e12 = mesh.with_quantized_phases(12).matrix().max_abs_diff(&u);
        prop_assert!(e12 <= e6 + 1e-12);
    }
}

#[test]
fn empty_mesh_is_identity() {
    let mesh = MziMesh::identity(3);
    assert!(mesh.matrix().max_abs_diff(&CMatrix::identity(3)) < 1e-12);
}
