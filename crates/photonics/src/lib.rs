//! Photonic hardware model for MZI-based optical neural networks.
//!
//! This crate is the "chip" half of the OplixNet reproduction: it models
//! every optical component the paper relies on, at field level (complex
//! amplitudes), and provides the exact device-count arithmetic behind the
//! paper's area claims.
//!
//! * [`devices`] — directional couplers, phase shifters, MZIs (Eq. 1),
//!   attenuators.
//! * [`mesh`] — programmable MZI meshes with field propagation, phase
//!   noise and quantisation models.
//! * [`drift`] — seeded random-walk phase drift (thermal wander between
//!   recalibrations), the accumulating counterpart to one-shot noise.
//! * [`reck`] / [`clements`] — unitary → MZI-phase decompositions
//!   (refs. \[14\] and \[20\]).
//! * [`svd_map`] — `W = U Σ V*` weight deployment onto two meshes and a
//!   column of attenuators.
//! * [`compiled`] — meshes and SVD layers baked into precomputed
//!   coefficient kernels at deploy time (bitwise identical to the
//!   interpreted walk, no per-sample trigonometry), with batched
//!   propagation entry points for the serving engine.
//! * [`count`] — MZI / DC / PS counting (the paper's area metric).
//! * [`area`] — optional physical-footprint model.
//! * [`power`] — phase-dependent static power (0–80 mW per PS).
//! * [`loss_model`] — insertion loss and time-of-flight latency vs depth.
//! * [`encoder`] — the proposed DC-based complex encoder, the PS-based
//!   encoder of prior work, and the conventional amplitude encoder
//!   (Fig. 3).
//! * [`decoder`] — photodiode, differential (merging) and coherent
//!   detection plus decoder area accounting (Fig. 6, Fig. 9).
//!
//! # Example: deploy a weight matrix and run it optically
//!
//! ```
//! use oplix_linalg::{CMatrix, Complex64};
//! use oplix_photonics::svd_map::{MeshStyle, PhotonicLayer};
//!
//! let w = CMatrix::from_fn(2, 2, |i, j| Complex64::new((i + 2 * j) as f64, 0.5));
//! let layer = PhotonicLayer::from_matrix(&w, MeshStyle::Clements);
//! let y = layer.forward(&[Complex64::ONE, Complex64::i()]);
//! let exact = w.mul_vec(&[Complex64::ONE, Complex64::i()]);
//! assert!((y[0] - exact[0]).abs() < 1e-8);
//! ```

pub mod area;
pub mod clements;
pub mod compiled;
pub mod count;
pub mod decoder;
pub mod devices;
pub mod drift;
pub mod encoder;
pub mod loss_model;
pub mod mesh;
pub mod power;
pub mod reck;
pub mod svd_map;

pub use compiled::{CompiledLayer, CompiledMesh};
pub use count::{mzi_count, DeviceCount};
pub use decoder::DecoderKind;
pub use devices::Mzi;
pub use drift::PhaseDrift;
pub use mesh::MziMesh;
pub use svd_map::{MeshStyle, PhotonicLayer};
