//! Programmable MZI meshes: the optical matrix-vector-multiplication engine.
//!
//! A mesh is an ordered sequence of [`Mzi`]s on adjacent waveguide pairs
//! followed by one column of output phase shifters. Propagating `n` field
//! amplitudes through the mesh applies an `n×n` unitary; the
//! [`crate::reck`] and [`crate::clements`] modules compute the phases that
//! realise an arbitrary target unitary.

use crate::devices::Mzi;
use oplix_linalg::{CMatrix, Complex64};
use rand::Rng;

/// A programmable mesh of Mach–Zehnder interferometers.
///
/// # Example
///
/// ```
/// use oplix_photonics::mesh::MziMesh;
/// use oplix_linalg::Complex64;
///
/// let mesh = MziMesh::identity(4);
/// let x = [Complex64::ONE; 4];
/// let y = mesh.propagate(&x);
/// for (a, b) in x.iter().zip(&y) {
///     assert!((*a - *b).abs() < 1e-12);
/// }
/// ```
#[derive(Clone, Debug)]
pub struct MziMesh {
    n: usize,
    mzis: Vec<Mzi>,
    output_phases: Vec<f64>,
}

impl MziMesh {
    /// A mesh with no MZIs and zero output phases: the identity on `n`
    /// modes.
    pub fn identity(n: usize) -> Self {
        MziMesh {
            n,
            mzis: Vec::new(),
            output_phases: vec![0.0; n],
        }
    }

    /// Builds a mesh from parts.
    ///
    /// # Panics
    ///
    /// Panics if any MZI acts outside the `n` modes or if
    /// `output_phases.len() != n`.
    pub fn new(n: usize, mzis: Vec<Mzi>, output_phases: Vec<f64>) -> Self {
        assert_eq!(output_phases.len(), n, "need one output phase per mode");
        for m in &mzis {
            assert!(
                m.mode + 1 < n,
                "MZI on modes ({}, {}) outside mesh of size {n}",
                m.mode,
                m.mode + 1
            );
        }
        MziMesh {
            n,
            mzis,
            output_phases,
        }
    }

    /// Number of waveguide modes.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// The MZIs in application order (input side first).
    #[inline]
    pub fn mzis(&self) -> &[Mzi] {
        &self.mzis
    }

    /// Mutable access to the MZIs (used by the noise models).
    #[inline]
    pub fn mzis_mut(&mut self) -> &mut [Mzi] {
        &mut self.mzis
    }

    /// The output phase screen.
    #[inline]
    pub fn output_phases(&self) -> &[f64] {
        &self.output_phases
    }

    /// Mutable access to the output phase screen.
    #[inline]
    pub fn output_phases_mut(&mut self) -> &mut [f64] {
        &mut self.output_phases
    }

    /// Number of MZIs in the mesh.
    #[inline]
    pub fn mzi_count(&self) -> usize {
        self.mzis.len()
    }

    /// Propagates a field vector through the mesh.
    ///
    /// # Panics
    ///
    /// Panics if `input.len() != self.n()`.
    pub fn propagate(&self, input: &[Complex64]) -> Vec<Complex64> {
        assert_eq!(
            input.len(),
            self.n,
            "field vector length must match mesh size"
        );
        let mut fields = input.to_vec();
        self.propagate_in_place(&mut fields);
        fields
    }

    /// Propagates a field vector through the mesh, reusing the buffer.
    ///
    /// # Panics
    ///
    /// Panics if `fields.len() != self.n()`.
    pub fn propagate_in_place(&self, fields: &mut [Complex64]) {
        assert_eq!(
            fields.len(),
            self.n,
            "field vector length must match mesh size"
        );
        for mzi in &self.mzis {
            mzi.apply(fields);
        }
        for (f, &p) in fields.iter_mut().zip(&self.output_phases) {
            *f *= Complex64::cis(p);
        }
    }

    /// Reconstructs the unitary matrix this mesh implements by propagating
    /// the canonical basis — as one compiled batch
    /// ([`crate::compiled::CompiledMesh::unitary`]): the MZI coefficients
    /// are baked once and all `n` basis vectors replay them, instead of
    /// re-deriving six transcendentals per MZI per basis vector. Bitwise
    /// identical to the one-basis-vector-at-a-time interpreted walk (the
    /// compiled-kernel contract, pinned in this module's tests).
    pub fn matrix(&self) -> CMatrix {
        crate::compiled::CompiledMesh::compile(self).unitary()
    }

    /// The optical depth of the mesh: the number of MZI "columns" when MZIs
    /// are packed greedily left-to-right without mode conflicts. Clements
    /// meshes reach depth `n`, Reck meshes `2n−3` — this is the latency
    /// advantage of the rectangular layout.
    pub fn depth(&self) -> usize {
        let mut free_at = vec![0usize; self.n];
        let mut depth = 0;
        for mzi in &self.mzis {
            let layer = free_at[mzi.mode].max(free_at[mzi.mode + 1]);
            free_at[mzi.mode] = layer + 1;
            free_at[mzi.mode + 1] = layer + 1;
            depth = depth.max(layer + 1);
        }
        depth
    }

    /// All tunable phases of the mesh (θ then φ per MZI, then the output
    /// screen), in a stable order. Used by the power and noise models.
    pub fn phases(&self) -> Vec<f64> {
        let mut out = Vec::with_capacity(2 * self.mzis.len() + self.n);
        for m in &self.mzis {
            out.push(m.theta);
            out.push(m.phi);
        }
        out.extend_from_slice(&self.output_phases);
        out
    }

    /// Adds i.i.d. Gaussian perturbations of standard deviation `sigma`
    /// (radians) to every programmable phase, in place, in the stable
    /// [`MziMesh::phases`] order (θ then φ per MZI, then the output
    /// screen). This is the shared sampler behind both the one-shot noise
    /// model ([`MziMesh::with_phase_noise`]) and the accumulating drift
    /// model ([`crate::drift::PhaseDrift`]).
    pub fn perturb_phases<R: Rng>(&mut self, sigma: f64, rng: &mut R) {
        let mut gauss = || {
            let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
            let u2: f64 = rng.gen_range(0.0..1.0);
            sigma * (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
        };
        for m in &mut self.mzis {
            m.theta += gauss();
            m.phi += gauss();
        }
        for p in &mut self.output_phases {
            *p += gauss();
        }
    }

    /// Returns a copy of the mesh with i.i.d. Gaussian phase noise of
    /// standard deviation `sigma` (radians) added to every programmable
    /// phase — the classic thermal-crosstalk / fabrication imprecision
    /// model of Fang et al. (Optics Express 2019).
    pub fn with_phase_noise<R: Rng>(&self, sigma: f64, rng: &mut R) -> MziMesh {
        let mut out = self.clone();
        out.perturb_phases(sigma, rng);
        out
    }

    /// Returns a copy of the mesh with every phase quantised to `bits` bits
    /// over `[0, 2π)` — a DAC-resolution model.
    ///
    /// # Panics
    ///
    /// Panics if `bits == 0` or `bits > 32`.
    pub fn with_quantized_phases(&self, bits: u32) -> MziMesh {
        assert!((1..=32).contains(&bits), "bits must be in 1..=32");
        let levels = (1u64 << bits) as f64;
        let q = |p: f64| {
            let wrapped = p.rem_euclid(std::f64::consts::TAU);
            let step = std::f64::consts::TAU / levels;
            (wrapped / step).round() * step
        };
        let mut out = self.clone();
        for m in &mut out.mzis {
            m.theta = q(m.theta);
            m.phi = q(m.phi);
        }
        for p in &mut out.output_phases {
            *p = q(*p);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn identity_mesh_is_identity() {
        let mesh = MziMesh::identity(5);
        assert!(mesh.matrix().max_abs_diff(&CMatrix::identity(5)) < 1e-12);
        assert_eq!(mesh.mzi_count(), 0);
        assert_eq!(mesh.depth(), 0);
    }

    #[test]
    fn single_mzi_mesh_matches_device() {
        let mzi = Mzi::new(0, 1.1, 0.4);
        let mesh = MziMesh::new(2, vec![mzi], vec![0.0, 0.0]);
        assert!(mesh.matrix().max_abs_diff(&mzi.transfer()) < 1e-12);
    }

    #[test]
    fn mesh_matrix_is_unitary() {
        let mesh = MziMesh::new(
            4,
            vec![
                Mzi::new(0, 0.5, 1.0),
                Mzi::new(2, 1.5, -0.5),
                Mzi::new(1, 2.5, 0.3),
            ],
            vec![0.1, 0.2, 0.3, 0.4],
        );
        assert!(mesh.matrix().is_unitary(1e-12));
    }

    #[test]
    fn propagate_matches_matrix() {
        let mesh = MziMesh::new(
            3,
            vec![Mzi::new(0, 0.9, 0.2), Mzi::new(1, 1.8, -1.0)],
            vec![0.5, -0.5, 1.0],
        );
        let x = vec![
            Complex64::new(1.0, 0.0),
            Complex64::new(0.0, 1.0),
            Complex64::new(-0.5, 0.5),
        ];
        let via_mesh = mesh.propagate(&x);
        let via_matrix = mesh.matrix().mul_vec(&x);
        for (a, b) in via_mesh.iter().zip(&via_matrix) {
            assert!((*a - *b).abs() < 1e-12);
        }
    }

    #[test]
    fn depth_packs_disjoint_mzis() {
        // MZIs on (0,1) and (2,3) can share a column.
        let mesh = MziMesh::new(
            4,
            vec![
                Mzi::new(0, 1.0, 0.0),
                Mzi::new(2, 1.0, 0.0),
                Mzi::new(1, 1.0, 0.0),
            ],
            vec![0.0; 4],
        );
        assert_eq!(mesh.depth(), 2);
    }

    #[test]
    fn phase_noise_zero_sigma_is_identity() {
        let mesh = MziMesh::new(3, vec![Mzi::new(0, 1.0, 2.0)], vec![0.0, 0.1, 0.2]);
        let mut rng = StdRng::seed_from_u64(1);
        let noisy = mesh.with_phase_noise(0.0, &mut rng);
        assert!(mesh.matrix().max_abs_diff(&noisy.matrix()) < 1e-12);
    }

    #[test]
    fn phase_noise_perturbs_but_stays_unitary() {
        let mesh = MziMesh::new(
            3,
            vec![Mzi::new(0, 1.0, 2.0), Mzi::new(1, 0.5, 0.5)],
            vec![0.0; 3],
        );
        let mut rng = StdRng::seed_from_u64(2);
        let noisy = mesh.with_phase_noise(0.1, &mut rng);
        assert!(noisy.matrix().is_unitary(1e-12));
        assert!(mesh.matrix().max_abs_diff(&noisy.matrix()) > 1e-4);
    }

    #[test]
    fn quantization_converges_with_bits() {
        let mesh = MziMesh::new(
            3,
            vec![Mzi::new(0, 1.234, 2.345), Mzi::new(1, 0.567, 0.891)],
            vec![0.1, 0.2, 0.3],
        );
        let err4 = mesh
            .with_quantized_phases(4)
            .matrix()
            .max_abs_diff(&mesh.matrix());
        let err8 = mesh
            .with_quantized_phases(8)
            .matrix()
            .max_abs_diff(&mesh.matrix());
        let err12 = mesh
            .with_quantized_phases(12)
            .matrix()
            .max_abs_diff(&mesh.matrix());
        assert!(err8 < err4);
        assert!(err12 < err8);
        assert!(err12 < 1e-2);
    }

    #[test]
    #[should_panic(expected = "outside mesh")]
    fn rejects_out_of_range_mzi() {
        let _ = MziMesh::new(2, vec![Mzi::new(1, 0.0, 0.0)], vec![0.0, 0.0]);
    }

    #[test]
    fn phases_vector_layout() {
        let mesh = MziMesh::new(2, vec![Mzi::new(0, 1.0, 2.0)], vec![3.0, 4.0]);
        assert_eq!(mesh.phases(), vec![1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn matrix_via_compiled_batch_is_bitwise_the_basis_walk() {
        use rand::Rng;
        // `matrix()` now propagates the identity basis as one compiled
        // batch; pin it bitwise against the historical implementation,
        // one interpreted basis-vector walk per column.
        let mut rng = StdRng::seed_from_u64(17);
        for &(n, count) in &[(1usize, 0usize), (3, 4), (6, 20), (9, 45)] {
            let mzis = (0..count)
                .map(|_| {
                    Mzi::new(
                        rng.gen_range(0..n.max(2) - 1),
                        rng.gen_range(-6.0..6.0),
                        rng.gen_range(-6.0..6.0),
                    )
                })
                .collect();
            let phases = (0..n).map(|_| rng.gen_range(-6.0..6.0)).collect();
            let mesh = MziMesh::new(n, mzis, phases);

            let via_batch = mesh.matrix();
            let mut via_walk = CMatrix::zeros(n, n);
            for j in 0..n {
                let mut e = vec![Complex64::ZERO; n];
                e[j] = Complex64::ONE;
                mesh.propagate_in_place(&mut e);
                for i in 0..n {
                    via_walk[(i, j)] = e[i];
                }
            }
            assert_eq!(
                via_batch.max_abs_diff(&via_walk),
                0.0,
                "n={n} count={count}: compiled-batch matrix must be bitwise the basis walk"
            );
        }
    }
}
