//! Clements rectangular decomposition of a unitary into MZI phases.
//!
//! Clements et al. (Optica 2016, the paper's ref. \[20\]) rearrange the Reck
//! triangle into a rectangle of the same `N(N−1)/2` MZIs but only depth
//! `N`, halving the optical path length and balancing loss. The algorithm
//! nulls anti-diagonals alternately with right multiplications
//! (`U ← U·T^{-1}`) and left multiplications (`U ← T·U`), then commutes the
//! left factors through the residual diagonal phase screen.

use crate::devices::Mzi;
use crate::mesh::MziMesh;
use crate::reck::null_from_right;
use oplix_linalg::{CMatrix, Complex64};
use std::f64::consts::PI;

/// Decomposes a unitary matrix into a Clements-style rectangular MZI mesh.
///
/// # Panics
///
/// Panics if `u` is not square or not unitary to within `1e-8`.
///
/// # Example
///
/// ```
/// use oplix_linalg::CMatrix;
/// use oplix_photonics::clements::decompose_clements;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(5);
/// let u = CMatrix::random_unitary(6, &mut rng);
/// let mesh = decompose_clements(&u);
/// assert_eq!(mesh.mzi_count(), 6 * 5 / 2);
/// assert!(mesh.matrix().max_abs_diff(&u) < 1e-8);
/// ```
pub fn decompose_clements(u: &CMatrix) -> MziMesh {
    let n = u.rows();
    assert_eq!(n, u.cols(), "decompose_clements requires a square matrix");
    assert!(
        u.is_unitary(1e-8),
        "decompose_clements requires a unitary matrix"
    );

    if n == 0 {
        return MziMesh::identity(0);
    }

    let mut work = u.clone();
    // Right-side factors in application order (applied to the input first).
    let mut right: Vec<Mzi> = Vec::new();
    // Left-side factors in the order they were applied (T_1 first).
    let mut left: Vec<Mzi> = Vec::new();

    for i in 0..n.saturating_sub(1) {
        if i % 2 == 0 {
            // Null the anti-diagonal from the bottom-left corner upward
            // using right multiplications on column pairs.
            for j in 0..=i {
                let r = n - 1 - j;
                let c = i - j;
                let (theta, phi) = null_from_right(&mut work, r, c);
                right.push(Mzi::new(c, theta, phi));
            }
        } else {
            // Null the anti-diagonal using left multiplications on row
            // pairs.
            for j in 0..=i {
                let r = n - 1 - i + j;
                let c = j;
                let (theta, phi) = null_from_left(&mut work, r, c);
                left.push(Mzi::new(r - 1, theta, phi));
            }
        }
    }

    // work is now diagonal: U = L_1^H ⋯ L_p^H · D · R_q ⋯ R_1 with
    // L/R in application order. Commute each L^H through D:
    //   T(θ,φ)^H · diag(ψ_m, ψ_{m+1}) = diag(χ_m, χ_{m+1}) · T(θ, φ')
    // with φ' = ψ_m − ψ_{m+1}, χ_m = ψ_{m+1} − φ − θ + π,
    // χ_{m+1} = ψ_{m+1} − θ + π.
    let mut psi: Vec<f64> = (0..n).map(|i| work[(i, i)].arg()).collect();
    let mut converted: Vec<Mzi> = Vec::with_capacity(left.len());
    for l in left.iter().rev() {
        let m = l.mode;
        let phi_new = psi[m] - psi[m + 1];
        let chi_top = psi[m + 1] - l.phi - l.theta + PI;
        let chi_bot = psi[m + 1] - l.theta + PI;
        psi[m] = chi_top;
        psi[m + 1] = chi_bot;
        converted.push(Mzi::new(m, l.theta, phi_new));
    }
    // Resulting factorisation: U = D_final · T'_1 ⋯ T'_p · R_q ⋯ R_1,
    // where `converted` currently holds [T'_p, …, T'_1] (we walked the left
    // list from the innermost factor outwards). Application order to the
    // input: R_1 … R_q, then T'_p … T'_1, then D_final.
    let mut mzis = right;
    mzis.extend(converted);

    MziMesh::new(n, mzis, psi)
}

/// Chooses `(theta, phi)` so that left-multiplying `work` by `T(theta, phi)`
/// acting on rows `(r-1, r)` nulls `work[(r, c)]`, and applies the update in
/// place.
///
/// The second row of the MZI block is `i·e^{iθ/2}·(e^{iφ}cos(θ/2),
/// −sin(θ/2))`, so with `a = work[(r,c)]` and `b = work[(r-1,c)]` the
/// condition is `e^{iφ}·cos(θ/2)·b − sin(θ/2)·a = 0`, solved by
/// `φ = arg(a·conj(b))` and `θ = 2·atan2(|b|, |a|)` — then
/// `tan(θ/2) = |b|/|a|` and the phases align.
fn null_from_left(work: &mut CMatrix, r: usize, c: usize) -> (f64, f64) {
    let a = work[(r, c)];
    let b = work[(r - 1, c)];
    let phi = (a * b.conj()).arg();
    let theta = 2.0 * b.abs().atan2(a.abs());

    apply_t_left(work, r - 1, theta, phi);
    work[(r, c)] = Complex64::ZERO;
    (theta, phi)
}

/// In-place left multiplication `work ← T(θ,φ) · work` on row pair
/// `(m, m+1)`.
fn apply_t_left(work: &mut CMatrix, m: usize, theta: f64, phi: f64) {
    let t = Mzi::new(0, theta, phi).transfer();
    let t00 = t[(0, 0)];
    let t01 = t[(0, 1)];
    let t10 = t[(1, 0)];
    let t11 = t[(1, 1)];
    for j in 0..work.cols() {
        let x = work[(m, j)];
        let y = work[(m + 1, j)];
        work[(m, j)] = t00 * x + t01 * y;
        work[(m + 1, j)] = t10 * x + t11 * y;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reck::decompose_reck;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn reconstructs_random_unitaries() {
        let mut rng = StdRng::seed_from_u64(10);
        for n in [1usize, 2, 3, 4, 5, 8, 12, 16] {
            let u = CMatrix::random_unitary(n, &mut rng);
            let mesh = decompose_clements(&u);
            assert_eq!(mesh.mzi_count(), n * (n - 1) / 2, "n = {n}");
            let err = mesh.matrix().max_abs_diff(&u);
            assert!(err < 1e-9, "n = {n}, err = {err}");
        }
    }

    #[test]
    fn clements_is_shallower_than_reck() {
        let mut rng = StdRng::seed_from_u64(11);
        let n = 12;
        let u = CMatrix::random_unitary(n, &mut rng);
        let clements = decompose_clements(&u);
        let reck = decompose_reck(&u);
        assert!(
            clements.depth() < reck.depth(),
            "clements depth {} should beat reck depth {}",
            clements.depth(),
            reck.depth()
        );
        // The rectangle packs into ~n columns.
        assert!(clements.depth() <= n);
    }

    #[test]
    fn identity_round_trips() {
        let u = CMatrix::identity(5);
        let mesh = decompose_clements(&u);
        assert!(mesh.matrix().max_abs_diff(&u) < 1e-10);
    }

    #[test]
    fn permutation_round_trips() {
        let n = 6;
        let u = CMatrix::from_fn(n, n, |i, j| {
            if (i + 2) % n == j {
                Complex64::ONE
            } else {
                Complex64::ZERO
            }
        });
        let mesh = decompose_clements(&u);
        assert!(mesh.matrix().max_abs_diff(&u) < 1e-9);
    }

    #[test]
    fn same_mzi_budget_as_reck() {
        let mut rng = StdRng::seed_from_u64(12);
        let u = CMatrix::random_unitary(9, &mut rng);
        assert_eq!(
            decompose_clements(&u).mzi_count(),
            decompose_reck(&u).mzi_count()
        );
    }

    #[test]
    #[should_panic(expected = "unitary")]
    fn rejects_non_unitary() {
        let a = CMatrix::from_fn(3, 3, |i, j| Complex64::new((i * j) as f64, 1.0));
        let _ = decompose_clements(&a);
    }
}
