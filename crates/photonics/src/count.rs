//! Device counting: the paper's area metric.
//!
//! The paper measures area in **number of MZIs** (Table II) and, for the
//! OFFT comparison (Fig. 7), in **directional couplers and phase
//! shifters**, with the convention that one MZI contains 2 DCs and 1 PS
//! (§IV: "we use the same MZI structure, which contains 2 DCs and 1 PS").

/// DCs per MZI in the paper's comparison convention.
pub const DCS_PER_MZI: u64 = 2;
/// PSs per MZI in the paper's comparison convention.
pub const PSS_PER_MZI: u64 = 1;

/// Number of MZIs required to implement an `m×n` weight matrix via SVD
/// (paper §II-A): `n(n−1)/2 + min(m,n) + m(m−1)/2`.
///
/// The `min(m,n)` middle term is the diagonal Σ stage, realised with one
/// MZI-based attenuator per singular value.
///
/// # Example
///
/// ```
/// use oplix_photonics::count::mzi_count;
///
/// // The paper's FCNN layer 100×784:
/// assert_eq!(mzi_count(100, 784), 784 * 783 / 2 + 100 + 100 * 99 / 2);
/// ```
pub fn mzi_count(m: u64, n: u64) -> u64 {
    n * (n - 1) / 2 + m.min(n) + m * (m - 1) / 2
}

/// Number of MZIs in a single `k×k` unitary mesh: `k(k−1)/2`.
pub fn unitary_mzi_count(k: u64) -> u64 {
    k * (k - 1) / 2
}

/// An aggregated optical device inventory.
///
/// `extra_dcs`/`extra_pss`/`extra_modulators` account for devices outside
/// the MZI meshes — e.g. the DC of the proposed complex encoder, or the PS
/// of the PS-based encoder.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DeviceCount {
    /// MZIs inside the weight meshes (including Σ attenuator MZIs).
    pub mzis: u64,
    /// Directional couplers outside the meshes.
    pub extra_dcs: u64,
    /// Thermo-optic phase shifters outside the meshes.
    pub extra_pss: u64,
    /// High-speed input modulators.
    pub modulators: u64,
    /// Output photodiodes.
    pub photodiodes: u64,
}

impl DeviceCount {
    /// A count consisting purely of `mzis` mesh MZIs.
    pub fn from_mzis(mzis: u64) -> Self {
        DeviceCount {
            mzis,
            ..Default::default()
        }
    }

    /// Total directional couplers (mesh + extra).
    pub fn dcs(&self) -> u64 {
        self.mzis * DCS_PER_MZI + self.extra_dcs
    }

    /// Total phase shifters (mesh + extra).
    pub fn pss(&self) -> u64 {
        self.mzis * PSS_PER_MZI + self.extra_pss
    }

    /// Component-wise sum.
    pub fn plus(&self, other: &DeviceCount) -> DeviceCount {
        DeviceCount {
            mzis: self.mzis + other.mzis,
            extra_dcs: self.extra_dcs + other.extra_dcs,
            extra_pss: self.extra_pss + other.extra_pss,
            modulators: self.modulators + other.modulators,
            photodiodes: self.photodiodes + other.photodiodes,
        }
    }
}

impl std::iter::Sum for DeviceCount {
    fn sum<I: Iterator<Item = DeviceCount>>(iter: I) -> Self {
        iter.fold(DeviceCount::default(), |a, b| a.plus(&b))
    }
}

/// Area reduction ratio `1 − proposed/original`, as reported in Table II.
///
/// # Panics
///
/// Panics if `original == 0`.
pub fn reduction_ratio(original: u64, proposed: u64) -> f64 {
    assert!(original > 0, "original device count must be positive");
    1.0 - proposed as f64 / original as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_fcnn_layer_counts() {
        // Original FCNN 784-100-10 (Table II row 1): 31.7e4 MZIs.
        let orig = mzi_count(100, 784) + mzi_count(10, 100);
        assert_eq!(orig, 316_991);
        // Matches the paper's 31.7 × 10^4 after rounding.
        assert_eq!((orig as f64 / 1e4 * 10.0).round() / 10.0, 31.7);
    }

    #[test]
    fn proposed_fcnn_counts_with_merge_decoder() {
        // Split FCNN: complex sizes 392-50, merge decoder doubles the last
        // layer output: 20×50. Paper reports 7.9e4.
        let prop = mzi_count(50, 392) + mzi_count(20, 50);
        assert_eq!(prop, 79_346);
        assert_eq!((prop as f64 / 1e4 * 10.0).round() / 10.0, 7.9);
        let red = reduction_ratio(316_991, prop);
        assert!((red - 0.7503).abs() < 0.001, "reduction = {red}");
    }

    #[test]
    fn mzi_count_symmetric_in_min_term() {
        assert_eq!(mzi_count(4, 4), 6 + 4 + 6);
        assert_eq!(mzi_count(1, 1), 1);
        assert_eq!(mzi_count(2, 1), 1 + 1);
    }

    #[test]
    fn unitary_count_matches_figure_1b() {
        // Figure 1(b): a 4×4 unitary needs 6 MZIs.
        assert_eq!(unitary_mzi_count(4), 6);
    }

    #[test]
    fn dc_ps_convention() {
        let c = DeviceCount::from_mzis(10);
        assert_eq!(c.dcs(), 20);
        assert_eq!(c.pss(), 10);
    }

    #[test]
    fn plus_and_sum() {
        let a = DeviceCount {
            mzis: 1,
            extra_dcs: 2,
            extra_pss: 3,
            modulators: 4,
            photodiodes: 5,
        };
        let b = a.plus(&a);
        assert_eq!(b.mzis, 2);
        assert_eq!(b.dcs(), 8);
        let s: DeviceCount = vec![a, a, a].into_iter().sum();
        assert_eq!(s.photodiodes, 15);
    }

    #[test]
    fn reduction_ratio_basics() {
        assert!((reduction_ratio(100, 25) - 0.75).abs() < 1e-12);
        assert_eq!(reduction_ratio(10, 10), 0.0);
    }
}
