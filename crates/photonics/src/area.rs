//! Physical-area model.
//!
//! The paper deliberately reports area as device counts ("Due to various
//! computation methods for the optical network area, we utilize the number
//! of MZIs rather than the actual physical area"). For users who want a
//! rough physical figure we additionally provide a configurable footprint
//! model with defaults representative of the silicon-photonic platforms
//! cited by the paper (Shen 2017 \[10\], Zhang 2021 \[16\]).

use crate::count::DeviceCount;

/// Per-device footprints in square micrometres.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AreaModel {
    /// Footprint of one MZI (2 DCs + thermal PSs + routing), µm².
    pub mzi_um2: f64,
    /// Footprint of a standalone directional coupler, µm².
    pub dc_um2: f64,
    /// Footprint of a standalone thermo-optic phase shifter, µm².
    pub ps_um2: f64,
    /// Footprint of a high-speed input modulator, µm².
    pub modulator_um2: f64,
    /// Footprint of a germanium photodiode, µm².
    pub photodiode_um2: f64,
}

impl AreaModel {
    /// Representative silicon-photonics footprints: an MZI of roughly
    /// 300 µm × 50 µm, DCs of 40 µm × 25 µm, thermal PSs of 100 µm × 25 µm,
    /// depletion modulators of 500 µm × 25 µm and compact Ge photodiodes.
    pub fn silicon_photonic_defaults() -> Self {
        AreaModel {
            mzi_um2: 300.0 * 50.0,
            dc_um2: 40.0 * 25.0,
            ps_um2: 100.0 * 25.0,
            modulator_um2: 500.0 * 25.0,
            photodiode_um2: 50.0 * 25.0,
        }
    }

    /// Total physical area of a device inventory, in mm².
    pub fn area_mm2(&self, count: &DeviceCount) -> f64 {
        let um2 = count.mzis as f64 * self.mzi_um2
            + count.extra_dcs as f64 * self.dc_um2
            + count.extra_pss as f64 * self.ps_um2
            + count.modulators as f64 * self.modulator_um2
            + count.photodiodes as f64 * self.photodiode_um2;
        um2 / 1e6
    }
}

impl Default for AreaModel {
    fn default() -> Self {
        Self::silicon_photonic_defaults()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn area_scales_linearly_with_mzis() {
        let model = AreaModel::default();
        let a1 = model.area_mm2(&DeviceCount::from_mzis(100));
        let a2 = model.area_mm2(&DeviceCount::from_mzis(200));
        assert!((a2 / a1 - 2.0).abs() < 1e-12);
    }

    #[test]
    fn extras_contribute() {
        let model = AreaModel::default();
        let bare = DeviceCount::from_mzis(10);
        let with_encoder = DeviceCount {
            extra_dcs: 5,
            modulators: 10,
            ..bare
        };
        assert!(model.area_mm2(&with_encoder) > model.area_mm2(&bare));
    }

    #[test]
    fn empty_count_zero_area() {
        let model = AreaModel::default();
        assert_eq!(model.area_mm2(&DeviceCount::default()), 0.0);
    }

    #[test]
    fn defaults_are_sane_magnitudes() {
        // A 31.7e4-MZI network (the paper's original FCNN) should land in
        // the 1000–10000 mm² range — obviously impractical, which is the
        // paper's whole motivation.
        let model = AreaModel::default();
        let a = model.area_mm2(&DeviceCount::from_mzis(316_991));
        assert!(a > 1e3 && a < 1e4, "area = {a} mm²");
    }
}
