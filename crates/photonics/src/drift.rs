//! Slow phase drift: a random-walk model of thermal wander in MZI meshes.
//!
//! The one-shot noise model ([`crate::mesh::MziMesh::with_phase_noise`])
//! answers "how accurate is an imperfectly programmed chip?" — a single
//! i.i.d. Gaussian kick, restored when the scoped session ends. Real
//! deployments face a different enemy: every programmable phase *wanders*
//! over minutes as the thermal environment shifts, so error accumulates
//! between recalibrations. [`PhaseDrift`] models that as a per-step
//! Gaussian random walk: each call to [`PhaseDrift::step_mesh`] adds an
//! independent `N(0, σ_step²)` increment to every phase of a mesh, *in
//! place*, with no restore — after `k` steps the accumulated deviation of
//! each phase is `N(0, k·σ_step²)`.
//!
//! The serving stack threads one `PhaseDrift` through a live
//! micro-batcher (one step per flush cycle) so the online-recalibration
//! scenario — accuracy degrades under drift, a hot swap to a freshly
//! calibrated deployment restores it — runs end to end.
//!
//! # Example
//!
//! ```
//! use oplix_photonics::drift::PhaseDrift;
//! use oplix_photonics::mesh::MziMesh;
//! use oplix_photonics::devices::Mzi;
//!
//! let mut mesh = MziMesh::new(2, vec![Mzi::new(0, 1.0, 0.5)], vec![0.0, 0.0]);
//! let clean = mesh.matrix();
//! let mut drift = PhaseDrift::new(0.02, 7);
//! for _ in 0..10 {
//!     drift.step_mesh(&mut mesh);
//! }
//! // Ten accumulated steps have wandered away from the calibrated point,
//! // but the mesh is still a mesh: the transfer stays unitary.
//! assert!(clean.max_abs_diff(&mesh.matrix()) > 1e-4);
//! assert!(mesh.matrix().is_unitary(1e-12));
//! assert_eq!(drift.meshes_stepped(), 10);
//! ```

use crate::mesh::MziMesh;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A seeded Gaussian random-walk drift process over mesh phases.
///
/// Each [`step_mesh`](PhaseDrift::step_mesh) call draws fresh increments
/// from the internal RNG, so a `PhaseDrift` value is a deterministic
/// *stream*: two walks with the same seed applied to the same sequence of
/// meshes produce bitwise-identical phase trajectories.
#[derive(Clone, Debug)]
pub struct PhaseDrift {
    sigma_step: f64,
    rng: StdRng,
    meshes_stepped: u64,
}

impl PhaseDrift {
    /// Creates a drift process with per-step standard deviation
    /// `sigma_step` (radians) and a deterministic seed.
    ///
    /// # Panics
    ///
    /// Panics if `sigma_step` is negative or non-finite.
    pub fn new(sigma_step: f64, seed: u64) -> Self {
        assert!(
            sigma_step.is_finite() && sigma_step >= 0.0,
            "sigma_step must be finite and non-negative, got {sigma_step}"
        );
        PhaseDrift {
            sigma_step,
            rng: StdRng::seed_from_u64(seed),
            meshes_stepped: 0,
        }
    }

    /// The per-step phase standard deviation, in radians.
    #[inline]
    pub fn sigma_step(&self) -> f64 {
        self.sigma_step
    }

    /// How many mesh perturbations this walk has emitted so far.
    #[inline]
    pub fn meshes_stepped(&self) -> u64 {
        self.meshes_stepped
    }

    /// Applies one random-walk increment to every programmable phase of
    /// `mesh`, in place. Unlike the noise session there is no restore:
    /// increments accumulate until the mesh is re-deployed from clean
    /// weights (the hot-swap recalibration path).
    pub fn step_mesh(&mut self, mesh: &mut MziMesh) {
        mesh.perturb_phases(self.sigma_step, &mut self.rng);
        self.meshes_stepped += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::devices::Mzi;

    fn mesh() -> MziMesh {
        MziMesh::new(
            3,
            vec![Mzi::new(0, 1.0, 2.0), Mzi::new(1, 0.5, -0.5)],
            vec![0.1, 0.2, 0.3],
        )
    }

    #[test]
    fn zero_sigma_walk_is_identity() {
        let mut m = mesh();
        let clean = m.matrix();
        let mut drift = PhaseDrift::new(0.0, 3);
        for _ in 0..5 {
            drift.step_mesh(&mut m);
        }
        assert_eq!(clean.max_abs_diff(&m.matrix()), 0.0);
        assert_eq!(drift.meshes_stepped(), 5);
    }

    #[test]
    fn same_seed_same_trajectory() {
        let (mut a, mut b) = (mesh(), mesh());
        let mut da = PhaseDrift::new(0.05, 11);
        let mut db = PhaseDrift::new(0.05, 11);
        for _ in 0..4 {
            da.step_mesh(&mut a);
            db.step_mesh(&mut b);
        }
        assert_eq!(a.phases(), b.phases());
    }

    #[test]
    fn deviation_accumulates_across_steps() {
        // Random-walk variance grows with step count: after many steps the
        // transfer must be strictly farther from clean than after one, and
        // every intermediate mesh stays unitary.
        let mut m = mesh();
        let clean = m.matrix();
        let mut drift = PhaseDrift::new(0.03, 42);
        drift.step_mesh(&mut m);
        let after_one = clean.max_abs_diff(&m.matrix());
        for _ in 0..63 {
            drift.step_mesh(&mut m);
            assert!(m.matrix().is_unitary(1e-10));
        }
        let after_many = clean.max_abs_diff(&m.matrix());
        assert!(after_one > 0.0);
        assert!(
            after_many > after_one,
            "64 accumulated steps ({after_many:.3e}) should exceed one step ({after_one:.3e})"
        );
    }

    #[test]
    fn one_step_matches_one_shot_noise_stream() {
        // A single drift step is exactly the one-shot noise model: same
        // sampler, same RNG stream, bitwise.
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let base = mesh();
        let mut via_drift = base.clone();
        PhaseDrift::new(0.1, 9).step_mesh(&mut via_drift);
        let noisy = base.with_phase_noise(0.1, &mut StdRng::seed_from_u64(9));
        assert_eq!(via_drift.phases(), noisy.phases());
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn rejects_negative_sigma() {
        let _ = PhaseDrift::new(-0.1, 0);
    }
}
