//! Compiled propagation kernels: meshes and SVD layers baked into
//! precomputed coefficients at deploy time.
//!
//! The interpreted walk ([`MziMesh::propagate_in_place`]) re-derives every
//! MZI's transfer coefficients — `sin`, `cos` and two phasors, six
//! transcendental evaluations — *per MZI, per sample*. A mesh's phases are
//! fixed the moment it is deployed, so a serving path can pay that cost
//! once: [`CompiledMesh::compile`] evaluates
//! [`Mzi::coefficients`](crate::devices::Mzi::coefficients) for
//! every MZI and stores the four 2×2 entries struct-of-arrays, grouped by
//! column stage (the greedy left-to-right packing of
//! [`MziMesh::depth`]), together with the precomputed output phasors.
//! Propagation then replays pure complex multiply–adds.
//!
//! **Bitwise contract.** Compiled propagation is *bitwise identical* to
//! the interpreted path: [`Mzi::apply`](crate::devices::Mzi::apply)
//! itself evaluates [`Mzi::coefficients`](crate::devices::Mzi::coefficients)
//! and applies the same 2×2 product the compiled
//! kernel replays, and the stage grouping only reorders MZIs that act on
//! disjoint mode pairs (mode-sharing MZIs always land in strictly
//! increasing stages), which commutes exactly in floating point. The
//! property tests at the bottom of this module pin both facts.
//!
//! [`CompiledLayer`] extends the same treatment to a whole SVD-mapped
//! layer (`V*` mesh → attenuator column → `U` mesh) and adds the batched
//! entry points ([`CompiledMesh::propagate_batch`],
//! [`CompiledLayer::forward_batch`]) the inference engine serves sample
//! windows through.

use crate::mesh::MziMesh;
use crate::svd_map::PhotonicLayer;
use oplix_linalg::lanes::{cmul_splat_lhs, cmul_splat_rhs, F64x4, Lane};
use oplix_linalg::Complex64;

std::thread_local! {
    /// Reusable planar mode-major staging buffer of
    /// [`CompiledMesh::propagate_batch`] (`2n` rows of `samples` doubles:
    /// row `2m` holds mode `m`'s re parts, row `2m+1` its im parts):
    /// after warm-up, batched propagation allocates nothing per window.
    static MODE_MAJOR_SCRATCH: std::cell::RefCell<Vec<f64>> =
        const { std::cell::RefCell::new(Vec::new()) };
}

/// Window size below which [`CompiledMesh::propagate_batch`] stays
/// sample-major: the planar transposes cost more than the
/// coefficient-reload traffic they save. Re-tuned for the planar lane
/// sweep: below one full lane of the widest tier (8 doubles) every
/// butterfly runs in the scalar remainder tail, so the planar path is
/// pure transpose overhead (~600 ns/sample either way on the 16-mode
/// Clements mesh), while at exactly 8 samples the lane sweep already
/// runs ~3.5× faster than sample-major. Public so the property tests
/// can pin windows straddling the switch.
pub const MODE_MAJOR_MIN_SAMPLES: usize = 8;

/// One MZI butterfly swept across a whole planar sample window: the four
/// rows are mode `m`'s and mode `m+1`'s re/im parts, and every lane of
/// four samples runs `x' = t00·x + t01·y`, `y' = t10·x + t11·y` with the
/// exact [`Complex64`] `Mul`/`Add` expression shape
/// ([`cmul_splat_lhs`], then element-wise adds). The remainder tail runs
/// the identical scalar expressions, so the sweep is bitwise the scalar
/// kernel on every sample.
#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn butterfly_rows<V: Lane<f64>>(
    t00: Complex64,
    t01: Complex64,
    t10: Complex64,
    t11: Complex64,
    xr: &mut [f64],
    xi: &mut [f64],
    yr: &mut [f64],
    yi: &mut [f64],
) {
    let samples = xr.len();
    let full = samples - samples % V::LANES;
    let mut c = 0;
    while c < full {
        let vxr = V::load(&xr[c..]);
        let vxi = V::load(&xi[c..]);
        let vyr = V::load(&yr[c..]);
        let vyi = V::load(&yi[c..]);
        let (pr, pi) = cmul_splat_lhs(t00.re, t00.im, vxr, vxi);
        let (qr, qi) = cmul_splat_lhs(t01.re, t01.im, vyr, vyi);
        let (rr, ri) = cmul_splat_lhs(t10.re, t10.im, vxr, vxi);
        let (sr, si) = cmul_splat_lhs(t11.re, t11.im, vyr, vyi);
        (pr + qr).store(&mut xr[c..]);
        (pi + qi).store(&mut xi[c..]);
        (rr + sr).store(&mut yr[c..]);
        (ri + si).store(&mut yi[c..]);
        c += V::LANES;
    }
    for s in full..samples {
        let x = Complex64::new(xr[s], xi[s]);
        let y = Complex64::new(yr[s], yi[s]);
        let nx = t00 * x + t01 * y;
        let ny = t10 * x + t11 * y;
        xr[s] = nx.re;
        xi[s] = nx.im;
        yr[s] = ny.re;
        yi[s] = ny.im;
    }
}

/// A mesh baked into precomputed 2×2 coefficients, struct-of-arrays,
/// grouped by column stage.
///
/// # Example
///
/// ```
/// use oplix_photonics::compiled::CompiledMesh;
/// use oplix_photonics::devices::Mzi;
/// use oplix_photonics::mesh::MziMesh;
/// use oplix_linalg::Complex64;
///
/// let mesh = MziMesh::new(
///     3,
///     vec![Mzi::new(0, 0.9, 0.2), Mzi::new(1, 1.8, -1.0)],
///     vec![0.5, -0.5, 1.0],
/// );
/// let compiled = CompiledMesh::compile(&mesh);
///
/// let mut interpreted = vec![Complex64::ONE, Complex64::i(), Complex64::ZERO];
/// let mut fast = interpreted.clone();
/// mesh.propagate_in_place(&mut interpreted);
/// compiled.propagate_in_place(&mut fast);
/// assert_eq!(interpreted, fast); // bitwise, not approximately
/// ```
#[derive(Clone, Debug)]
pub struct CompiledMesh {
    n: usize,
    /// Upper mode index per MZI, in stage-major order.
    modes: Vec<u32>,
    /// The 2×2 transfer entries per MZI, struct-of-arrays, stage-major.
    t00: Vec<Complex64>,
    t01: Vec<Complex64>,
    t10: Vec<Complex64>,
    t11: Vec<Complex64>,
    /// CSR-style offsets into the coefficient arrays: stage `s` spans
    /// `stages[s]..stages[s + 1]`.
    stages: Vec<usize>,
    /// Precomputed `e^{iφ}` of the output phase screen.
    out_phasors: Vec<Complex64>,
}

impl CompiledMesh {
    /// Bakes a mesh into precomputed coefficients.
    ///
    /// MZIs are packed greedily into column stages exactly like
    /// [`MziMesh::depth`] counts them; within a stage the original order
    /// is kept. Because two MZIs sharing a waveguide mode always land in
    /// strictly increasing stages, the stage-major replay order only
    /// commutes mode-disjoint MZIs — an exact (bitwise) reordering.
    pub fn compile(mesh: &MziMesh) -> Self {
        let n = mesh.n();
        let mzis = mesh.mzis();
        // Greedy column packing, identical to `MziMesh::depth`.
        let mut free_at = vec![0usize; n];
        let mut layer_of = Vec::with_capacity(mzis.len());
        let mut depth = 0usize;
        for mzi in mzis {
            let layer = free_at[mzi.mode].max(free_at[mzi.mode + 1]);
            free_at[mzi.mode] = layer + 1;
            free_at[mzi.mode + 1] = layer + 1;
            layer_of.push(layer);
            depth = depth.max(layer + 1);
        }
        // Counting sort into stage-major order (stable within a stage).
        let mut stages = vec![0usize; depth + 1];
        for &l in &layer_of {
            stages[l + 1] += 1;
        }
        for s in 0..depth {
            stages[s + 1] += stages[s];
        }
        let total = mzis.len();
        let mut cursor = stages.clone();
        let mut modes = vec![0u32; total];
        let mut t00 = vec![Complex64::ZERO; total];
        let mut t01 = vec![Complex64::ZERO; total];
        let mut t10 = vec![Complex64::ZERO; total];
        let mut t11 = vec![Complex64::ZERO; total];
        for (mzi, &layer) in mzis.iter().zip(&layer_of) {
            let slot = cursor[layer];
            cursor[layer] += 1;
            let [a, b, c, d] = mzi.coefficients();
            modes[slot] = mzi.mode as u32;
            t00[slot] = a;
            t01[slot] = b;
            t10[slot] = c;
            t11[slot] = d;
        }
        CompiledMesh {
            n,
            modes,
            t00,
            t01,
            t10,
            t11,
            stages,
            out_phasors: mesh
                .output_phases()
                .iter()
                .map(|&p| Complex64::cis(p))
                .collect(),
        }
    }

    /// Number of waveguide modes.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of MZIs baked into the kernel.
    #[inline]
    pub fn mzi_count(&self) -> usize {
        self.modes.len()
    }

    /// Number of column stages the coefficients are grouped into (equal to
    /// the source mesh's [`MziMesh::depth`]).
    #[inline]
    pub fn stage_count(&self) -> usize {
        self.stages.len() - 1
    }

    /// Approximate resident size of the compiled kernel in bytes, for
    /// cache accounting.
    pub fn approx_bytes(&self) -> usize {
        self.modes.len() * (4 * std::mem::size_of::<Complex64>() + 4)
            + self.stages.len() * std::mem::size_of::<usize>()
            + self.out_phasors.len() * std::mem::size_of::<Complex64>()
            + std::mem::size_of::<Self>()
    }

    /// The compiled kernel over one sample: replays every baked 2×2
    /// product in stage-major order, then the output phasors.
    #[inline]
    fn kernel(&self, fields: &mut [Complex64]) {
        for idx in 0..self.modes.len() {
            let m = self.modes[idx] as usize;
            let a = fields[m];
            let b = fields[m + 1];
            fields[m] = self.t00[idx] * a + self.t01[idx] * b;
            fields[m + 1] = self.t10[idx] * a + self.t11[idx] * b;
        }
        for (f, &ph) in fields.iter_mut().zip(&self.out_phasors) {
            *f *= ph;
        }
    }

    /// Propagates one field vector in place — bitwise identical to
    /// [`MziMesh::propagate_in_place`] on the source mesh, with zero
    /// transcendental evaluations.
    ///
    /// # Panics
    ///
    /// Panics if `fields.len() != self.n()`.
    pub fn propagate_in_place(&self, fields: &mut [Complex64]) {
        assert_eq!(
            fields.len(),
            self.n,
            "field vector length must match mesh size"
        );
        self.kernel(fields);
    }

    /// Propagates a window of `samples` field vectors stored contiguously
    /// (`fields[s*n .. (s+1)*n]` is sample `s`) through one compiled
    /// kernel — the batch entry point the inference engine serves sample
    /// windows through. Each sample runs the exact per-sample operation
    /// sequence, so the batch is bitwise identical to `samples` sequential
    /// [`CompiledMesh::propagate_in_place`] calls.
    ///
    /// Large windows run **mode-major and planar**: the window is
    /// transposed into one-re-row-plus-one-im-row-per-waveguide layout,
    /// every MZI's four coefficients are loaded once and swept across the
    /// whole window as four-wide lane multiply–adds over the four
    /// contiguous rows (the lane butterfly), the output phase screen runs
    /// as the final lane sweep over the same planar rows, and the result
    /// is transposed back. Per sample this replays the identical
    /// stage-major 2×2 products in the identical order with the identical
    /// scalar expression shape (no FMA contraction — see
    /// [`oplix_linalg::lanes`]), so the reordering across *independent*
    /// samples changes nothing bitwise — it only stops the kernel
    /// re-streaming the whole coefficient table per sample and keeps the
    /// complex cross terms in vector registers.
    ///
    /// # Panics
    ///
    /// Panics if `fields.len() != samples * self.n()`.
    pub fn propagate_batch(&self, fields: &mut [Complex64], samples: usize) {
        assert_eq!(
            fields.len(),
            samples * self.n,
            "batch length must be samples * mesh size"
        );
        // An empty mesh (or empty window) propagates nothing — early
        // return instead of chunking by a fabricated width.
        if self.n == 0 || samples == 0 {
            return;
        }
        if samples < MODE_MAJOR_MIN_SAMPLES || self.modes.is_empty() {
            for row in fields.chunks_exact_mut(self.n) {
                self.kernel(row);
            }
            return;
        }
        MODE_MAJOR_SCRATCH.with(|cell| {
            let mut scratch = cell.borrow_mut();
            // Grow-only: the transpose below overwrites every element of
            // the window, so no per-window zero-fill is needed.
            let planar_len = 2 * fields.len();
            if scratch.len() < planar_len {
                scratch.resize(planar_len, 0.0);
            }
            let scratch = &mut scratch[..planar_len];
            #[cfg(target_arch = "x86_64")]
            {
                if oplix_linalg::lanes::avx512f_available() {
                    // SAFETY: AVX-512F was just verified at runtime; the
                    // clone is the identical portable lane body
                    // monomorphised at 8 lanes (same operations, same
                    // order), so results are bitwise unchanged — see
                    // `oplix_linalg::lanes`.
                    unsafe { self.mode_major_batch_avx512(fields, scratch, samples) };
                    return;
                }
                if oplix_linalg::lanes::avx2_available() {
                    // SAFETY: AVX2 was just verified at runtime; the clone
                    // is the identical portable lane body at 4 lanes, so
                    // results are bitwise unchanged.
                    unsafe { self.mode_major_batch_avx2(fields, scratch, samples) };
                    return;
                }
            }
            self.mode_major_batch::<F64x4>(fields, scratch, samples);
        });
    }

    // SAFETY: `#[target_feature]` makes this fn unsafe to *call*; the
    // only caller gates on `avx512f_available()`. The body is the same
    // portable `mode_major_batch`, monomorphised at 8 lanes.
    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx512f")]
    unsafe fn mode_major_batch_avx512(
        &self,
        fields: &mut [Complex64],
        scratch: &mut [f64],
        samples: usize,
    ) {
        self.mode_major_batch::<oplix_linalg::lanes::F64x8>(fields, scratch, samples);
    }

    // SAFETY: `#[target_feature]` makes this fn unsafe to *call*; the
    // only caller gates on `avx2_available()`. The body is the same
    // portable `mode_major_batch`, monomorphised at 4 lanes.
    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx2")]
    unsafe fn mode_major_batch_avx2(
        &self,
        fields: &mut [Complex64],
        scratch: &mut [f64],
        samples: usize,
    ) {
        self.mode_major_batch::<F64x4>(fields, scratch, samples);
    }

    /// The planar mode-major kernel body, generic over the lane width the
    /// dispatch tier selected: transpose the window planar, replay every
    /// baked 2×2 butterfly in stage-major order across the whole window,
    /// then transpose back with the output phase screen folded into the
    /// final sweep (each lane of fields is phasor-multiplied in planar
    /// registers right before it scatters back sample-major, so the
    /// screen costs no separate pass over the scratch).
    #[inline(always)]
    fn mode_major_batch<V: Lane<f64>>(
        &self,
        fields: &mut [Complex64],
        scratch: &mut [f64],
        samples: usize,
    ) {
        let n = self.n;
        let full = samples - samples % V::LANES;
        // Transpose sample-major [s][m] → planar mode-major: row `2m`
        // holds mode m's re parts over the window, row `2m+1` its im
        // parts, so each butterfly touches four adjacent rows.
        for m in 0..n {
            let base = 2 * m * samples;
            let mut s = 0;
            while s < full {
                V::from_fn(|l| fields[(s + l) * n + m].re).store(&mut scratch[base + s..]);
                V::from_fn(|l| fields[(s + l) * n + m].im)
                    .store(&mut scratch[base + samples + s..]);
                s += V::LANES;
            }
            for s in full..samples {
                let f = fields[s * n + m];
                scratch[base + s] = f.re;
                scratch[base + samples + s] = f.im;
            }
        }
        for idx in 0..self.modes.len() {
            let m = self.modes[idx] as usize;
            let (x, rest) = scratch[2 * m * samples..].split_at_mut(2 * samples);
            let (xr, xi) = x.split_at_mut(samples);
            let (yr, yi) = rest[..2 * samples].split_at_mut(samples);
            butterfly_rows::<V>(
                self.t00[idx],
                self.t01[idx],
                self.t10[idx],
                self.t11[idx],
                xr,
                xi,
                yr,
                yi,
            );
        }
        // Transpose back, phase screen folded in: `f * phasor` with the
        // field as the left operand — the exact scalar expression of the
        // per-sample kernel's `*f *= ph` pass.
        for m in 0..n {
            let ph = self.out_phasors[m];
            let base = 2 * m * samples;
            let mut s = 0;
            while s < full {
                let (re, im) = cmul_splat_rhs(
                    V::load(&scratch[base + s..]),
                    V::load(&scratch[base + samples + s..]),
                    ph.re,
                    ph.im,
                );
                for l in 0..V::LANES {
                    fields[(s + l) * n + m] = Complex64::new(re.get(l), im.get(l));
                }
                s += V::LANES;
            }
            for s in full..samples {
                fields[s * n + m] =
                    Complex64::new(scratch[base + s], scratch[base + samples + s]) * ph;
            }
        }
    }

    /// Reconstructs the unitary the mesh implements by propagating the
    /// canonical basis as **one compiled batch**: the coefficients are
    /// baked once and [`CompiledMesh::propagate_batch`] pushes all `n`
    /// basis vectors through them, instead of re-deriving every MZI's
    /// transfer per basis vector as the interpreted walk would. Bitwise
    /// identical to propagating each basis vector through the source mesh
    /// one at a time (the [`MziMesh::matrix`] contract).
    pub fn unitary(&self) -> oplix_linalg::CMatrix {
        let n = self.n;
        // Row s of the batch is basis vector e_s.
        let mut batch = vec![Complex64::ZERO; n * n];
        for j in 0..n {
            batch[j * n + j] = Complex64::ONE;
        }
        self.propagate_batch(&mut batch, n);
        oplix_linalg::CMatrix::from_fn(n, n, |i, j| batch[j * n + i])
    }
}

/// Where one gathered input mode of [`CompiledLayer::forward_gathered`]
/// takes its field from. An im2col lowering of a convolution builds one
/// `GatherSource` per mesh input mode per output position: in-bounds patch
/// taps read input fields, padding taps are dark modes, and the bias tap
/// is the always-on reference mode.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GatherSource {
    /// Read the field at this index of the source sample.
    Input(u32),
    /// A dark mode: zero field (e.g. a conv tap in the zero padding).
    Dark,
    /// The always-on reference mode: unit field (the bias tap).
    Reference,
}

/// Expands one source sample through a gather `plan` into `dst`: each plan
/// slot reads its input field, a dark (zero) mode, or the reference (unit)
/// mode. This is the single source of truth for the im2col gather —
/// [`CompiledLayer::forward_gathered`] runs it inline per sample, and the
/// deploy layer's parallel gather path fans the same loop out across the
/// executor, so both are bitwise identical by construction.
///
/// The loop is **run-blocked** rather than per-slot: maximal runs of
/// consecutive `Input(j), Input(j+1), …` taps (the common case — an
/// im2col plan reads whole kernel-width rows of the input) become one
/// contiguous `copy_from_slice`, and runs of `Dark` / `Reference` become
/// splat `fill`s — each a vectorised block move instead of a per-slot
/// match. The values written per slot are identical to the per-slot walk,
/// so the blocking is bitwise by construction.
///
/// # Panics
///
/// Panics if `dst.len() != plan.len()` or a plan entry indexes past
/// `sample.len()`.
#[inline]
pub fn gather_into(plan: &[GatherSource], sample: &[Complex64], dst: &mut [Complex64]) {
    assert_eq!(
        dst.len(),
        plan.len(),
        "gather destination must fit the plan"
    );
    let mut i = 0;
    while i < plan.len() {
        let start = i;
        match plan[i] {
            GatherSource::Input(j0) => {
                let mut j = j0;
                i += 1;
                while i < plan.len() && j < u32::MAX && plan[i] == GatherSource::Input(j + 1) {
                    i += 1;
                    j += 1;
                }
                dst[start..i].copy_from_slice(&sample[j0 as usize..=j as usize]);
            }
            GatherSource::Dark => {
                i += 1;
                while i < plan.len() && plan[i] == GatherSource::Dark {
                    i += 1;
                }
                dst[start..i].fill(Complex64::ZERO);
            }
            GatherSource::Reference => {
                i += 1;
                while i < plan.len() && plan[i] == GatherSource::Reference {
                    i += 1;
                }
                dst[start..i].fill(Complex64::ONE);
            }
        }
    }
}

/// A whole SVD-mapped layer (`V*` mesh → Σ attenuators → `U` mesh) baked
/// into compiled kernels; the deploy-time artifact the serving engine
/// stores and the deployment cache memoises.
///
/// # Example
///
/// ```
/// use oplix_linalg::{CMatrix, Complex64};
/// use oplix_photonics::compiled::CompiledLayer;
/// use oplix_photonics::svd_map::{MeshStyle, PhotonicLayer};
///
/// let w = CMatrix::from_fn(2, 3, |i, j| Complex64::new(i as f64 + 1.0, j as f64));
/// let layer = PhotonicLayer::from_matrix(&w, MeshStyle::Clements);
/// let compiled = CompiledLayer::compile(&layer);
///
/// let mut io = vec![Complex64::ONE, Complex64::i(), Complex64::new(0.5, -0.5)];
/// let mut reference = io.clone();
/// let (mut tmp_a, mut tmp_b) = (Vec::new(), Vec::new());
/// compiled.forward_into(&mut io, &mut tmp_a);
/// layer.forward_into(&mut reference, &mut tmp_b);
/// assert_eq!(io, reference); // bitwise, not approximately
/// ```
#[derive(Clone, Debug)]
pub struct CompiledLayer {
    m: usize,
    n: usize,
    gain: f64,
    /// Attenuator amplitude coefficients, one per singular value.
    attenuations: Vec<f64>,
    v: CompiledMesh,
    u: CompiledMesh,
}

impl CompiledLayer {
    /// Bakes both meshes and the attenuator column of an SVD-mapped layer.
    pub fn compile(layer: &PhotonicLayer) -> Self {
        CompiledLayer {
            m: layer.output_dim(),
            n: layer.input_dim(),
            gain: layer.gain(),
            attenuations: layer.attenuators().iter().map(|a| a.coefficient).collect(),
            v: CompiledMesh::compile(layer.v_mesh()),
            u: CompiledMesh::compile(layer.u_mesh()),
        }
    }

    /// Output dimension `m`.
    #[inline]
    pub fn output_dim(&self) -> usize {
        self.m
    }

    /// Input dimension `n`.
    #[inline]
    pub fn input_dim(&self) -> usize {
        self.n
    }

    /// Approximate resident size in bytes, for cache accounting.
    pub fn approx_bytes(&self) -> usize {
        self.v.approx_bytes()
            + self.u.approx_bytes()
            + self.attenuations.len() * std::mem::size_of::<f64>()
            + std::mem::size_of::<Self>()
    }

    /// The Σ stage: keep `min(m, n)` modes, attenuate, apply the global
    /// gain — the exact operation order of
    /// [`PhotonicLayer::forward_into`].
    #[inline]
    fn sigma(&self, io: &[Complex64], tmp: &mut [Complex64]) {
        let k = self.m.min(self.n);
        for i in 0..k {
            tmp[i] = io[i].scale(self.attenuations[i]).scale(self.gain);
        }
    }

    /// Allocation-free compiled forward pass: `io` holds the input fields
    /// on entry (length `n`) and the output fields on exit (length `m`);
    /// `tmp` is caller-owned scratch. Bitwise identical to
    /// [`PhotonicLayer::forward_into`] on the source layer.
    ///
    /// # Panics
    ///
    /// Panics if `io.len() != self.input_dim()`.
    pub fn forward_into(&self, io: &mut Vec<Complex64>, tmp: &mut Vec<Complex64>) {
        assert_eq!(io.len(), self.n, "input length must equal the layer fan-in");
        self.v.propagate_in_place(io);
        tmp.clear();
        tmp.resize(self.m, Complex64::ZERO);
        self.sigma(io, tmp);
        self.u.propagate_in_place(tmp);
        std::mem::swap(io, tmp);
    }

    /// Batched forward over *im2col windows*: every sample of `src` (a
    /// contiguous window of `src.len() / src_width` samples, each
    /// `src_width` fields wide) is expanded into `plan.len() / input_dim`
    /// gathered rows — one per convolution output position — and the whole
    /// row window runs through [`CompiledLayer::forward_batch`] as one
    /// compiled batch. `plan` maps each gathered mode to its source:
    /// an input field, a dark (zero-padding) mode, or the always-on
    /// reference (bias) mode.
    ///
    /// On exit `io` holds `samples × rows_per_sample × output_dim` fields,
    /// row-major in `(sample, row)` order; `tmp` is caller-owned scratch.
    /// Bitwise identical to gathering each row by hand and running it
    /// through [`CompiledLayer::forward_into`].
    ///
    /// # Panics
    ///
    /// Panics if `plan.len()` is not a multiple of
    /// [`CompiledLayer::input_dim`], `src.len()` is not a multiple of
    /// `src_width`, or a plan entry indexes past `src_width`.
    pub fn forward_gathered(
        &self,
        src: &[Complex64],
        src_width: usize,
        plan: &[GatherSource],
        io: &mut Vec<Complex64>,
        tmp: &mut Vec<Complex64>,
    ) {
        assert!(
            plan.len().is_multiple_of(self.n.max(1)) && self.n > 0,
            "gather plan length must be a multiple of the layer fan-in"
        );
        assert!(
            src_width > 0 && src.len().is_multiple_of(src_width),
            "source window length must be a multiple of the sample width"
        );
        let rows_per_sample = plan.len() / self.n;
        let samples = src.len() / src_width;
        io.clear();
        io.resize(samples * rows_per_sample * self.n, Complex64::ZERO);
        for s in 0..samples {
            let sample = &src[s * src_width..(s + 1) * src_width];
            let dst = &mut io[s * plan.len()..(s + 1) * plan.len()];
            gather_into(plan, sample, dst);
        }
        self.forward_batch(io, tmp, samples * rows_per_sample);
    }

    /// Compiled forward pass over a window of `samples` contiguous
    /// samples: `io` holds `samples × n` input fields on entry and
    /// `samples × m` output fields on exit. Bitwise identical to running
    /// each sample through [`CompiledLayer::forward_into`].
    ///
    /// # Panics
    ///
    /// Panics if `io.len() != samples * self.input_dim()`.
    pub fn forward_batch(&self, io: &mut Vec<Complex64>, tmp: &mut Vec<Complex64>, samples: usize) {
        assert_eq!(
            io.len(),
            samples * self.n,
            "batch length must be samples * layer fan-in"
        );
        self.v.propagate_batch(io, samples);
        tmp.clear();
        tmp.resize(samples * self.m, Complex64::ZERO);
        for s in 0..samples {
            self.sigma(
                &io[s * self.n..(s + 1) * self.n],
                &mut tmp[s * self.m..(s + 1) * self.m],
            );
        }
        self.u.propagate_batch(tmp, samples);
        std::mem::swap(io, tmp);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::devices::Mzi;
    use crate::svd_map::MeshStyle;
    use oplix_linalg::CMatrix;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// A random mesh on `n` modes with `count` MZIs and random phases.
    fn random_mesh(n: usize, count: usize, seed: u64) -> MziMesh {
        let mut rng = StdRng::seed_from_u64(seed);
        let mzis = (0..count)
            .map(|_| {
                Mzi::new(
                    rng.gen_range(0..n.max(2) - 1),
                    rng.gen_range(-6.0..6.0),
                    rng.gen_range(-6.0..6.0),
                )
            })
            .collect();
        let phases = (0..n).map(|_| rng.gen_range(-6.0..6.0)).collect();
        MziMesh::new(n, mzis, phases)
    }

    fn random_fields(n: usize, seed: u64) -> Vec<Complex64> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| Complex64::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)))
            .collect()
    }

    #[test]
    fn empty_and_single_mode_meshes_compile() {
        for n in [0usize, 1] {
            let mesh = MziMesh::identity(n);
            let compiled = CompiledMesh::compile(&mesh);
            assert_eq!(compiled.mzi_count(), 0);
            assert_eq!(compiled.stage_count(), 0);
            let mut fields = random_fields(n, 7);
            let mut reference = fields.clone();
            compiled.propagate_in_place(&mut fields);
            mesh.propagate_in_place(&mut reference);
            assert_eq!(fields, reference);
        }
    }

    #[test]
    fn stage_grouping_matches_depth() {
        let mesh = random_mesh(8, 40, 3);
        let compiled = CompiledMesh::compile(&mesh);
        assert_eq!(compiled.stage_count(), mesh.depth());
        assert_eq!(compiled.mzi_count(), mesh.mzi_count());
    }

    #[test]
    fn forward_gathered_matches_manual_gather_bitwise() {
        // A 3-mode layer fed two gathered rows per 4-wide source sample:
        // the batched im2col entry point must be bitwise the hand-gathered
        // per-row walk, including dark (padding) and reference (bias)
        // modes.
        let mut rng = StdRng::seed_from_u64(900);
        let w = CMatrix::from_fn(2, 3, |_, _| {
            Complex64::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0))
        });
        let layer = PhotonicLayer::from_matrix(&w, MeshStyle::Clements);
        let compiled = CompiledLayer::compile(&layer);
        let plan = [
            GatherSource::Input(2),
            GatherSource::Dark,
            GatherSource::Reference,
            GatherSource::Input(0),
            GatherSource::Input(3),
            GatherSource::Reference,
        ];
        let src = random_fields(3 * 4, 901); // three 4-wide samples
        let (mut io, mut tmp) = (Vec::new(), Vec::new());
        compiled.forward_gathered(&src, 4, &plan, &mut io, &mut tmp);

        let mut want = Vec::new();
        for s in 0..3 {
            let sample = &src[s * 4..(s + 1) * 4];
            for row in [
                vec![sample[2], Complex64::ZERO, Complex64::ONE],
                vec![sample[0], sample[3], Complex64::ONE],
            ] {
                let mut io_row = row;
                let mut t = Vec::new();
                compiled.forward_into(&mut io_row, &mut t);
                want.extend(io_row);
            }
        }
        assert_eq!(io, want);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// The headline contract: compiled propagation is pinned *bitwise*
        /// against the interpreted walk across random meshes, including
        /// dense Clements-depth meshes and sparse ones.
        #[test]
        fn compiled_propagation_is_bitwise_interpreted(
            n in 2usize..12,
            count in 0usize..60,
            seed in 0u64..u64::MAX,
        ) {
            let mesh = random_mesh(n, count, seed);
            let compiled = CompiledMesh::compile(&mesh);
            let mut fields = random_fields(n, seed.wrapping_add(1));
            let mut reference = fields.clone();
            compiled.propagate_in_place(&mut fields);
            mesh.propagate_in_place(&mut reference);
            prop_assert_eq!(fields, reference);
        }

        /// The batch entry point is bitwise the per-sample kernel,
        /// including the empty window and windows big enough to take the
        /// mode-major fast path (samples ≥ 8).
        #[test]
        fn propagate_batch_is_bitwise_per_sample(
            n in 2usize..10,
            count in 0usize..40,
            samples in 0usize..24,
            seed in 0u64..u64::MAX,
        ) {
            let mesh = random_mesh(n, count, seed);
            let compiled = CompiledMesh::compile(&mesh);
            let mut batch = random_fields(n * samples, seed.wrapping_add(2));
            let reference: Vec<Complex64> = batch
                .chunks_exact(n)
                .flat_map(|row| {
                    let mut r = row.to_vec();
                    mesh.propagate_in_place(&mut r);
                    r
                })
                .collect();
            compiled.propagate_batch(&mut batch, samples);
            prop_assert_eq!(batch, reference);
        }

        /// Compiled SVD layers are bitwise the interpreted layer forward,
        /// across tall, wide and square weights and both mesh styles.
        #[test]
        fn compiled_layer_is_bitwise_interpreted(
            m in 1usize..7,
            n in 1usize..7,
            reck in 0u8..2,
            seed in 0u64..u64::MAX,
        ) {
            let mut rng = StdRng::seed_from_u64(seed);
            let w = CMatrix::from_fn(m, n, |_, _| {
                Complex64::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0))
            });
            let style = if reck == 0 { MeshStyle::Clements } else { MeshStyle::Reck };
            let layer = PhotonicLayer::from_matrix(&w, style);
            let compiled = CompiledLayer::compile(&layer);
            let mut io = random_fields(n, seed.wrapping_add(3));
            let mut reference = io.clone();
            let (mut tmp_a, mut tmp_b) = (Vec::new(), Vec::new());
            compiled.forward_into(&mut io, &mut tmp_a);
            layer.forward_into(&mut reference, &mut tmp_b);
            prop_assert_eq!(io, reference);
        }

        /// The layer-level batch kernel is bitwise the per-sample kernel,
        /// through both the small-window and mode-major mesh paths.
        #[test]
        fn forward_batch_is_bitwise_per_sample(
            m in 1usize..6,
            n in 1usize..6,
            samples in 0usize..20,
            seed in 0u64..u64::MAX,
        ) {
            let mut rng = StdRng::seed_from_u64(seed);
            let w = CMatrix::from_fn(m, n, |_, _| {
                Complex64::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0))
            });
            let layer = PhotonicLayer::from_matrix(&w, MeshStyle::Clements);
            let compiled = CompiledLayer::compile(&layer);
            let mut batch = random_fields(n * samples, seed.wrapping_add(4));
            let mut tmp = Vec::new();
            let reference: Vec<Complex64> = batch
                .chunks_exact(n)
                .flat_map(|row| {
                    let mut io = row.to_vec();
                    compiled.forward_into(&mut io, &mut tmp);
                    io
                })
                .collect();
            let mut scratch = Vec::new();
            compiled.forward_batch(&mut batch, &mut scratch, samples);
            prop_assert_eq!(batch, reference);
        }
    }
}
