//! Static power model for thermo-optic phase shifters.
//!
//! The paper (§I, citing Zhang et al., Nat. Commun. 2021 \[16\]) notes that
//! maintaining a phase costs **0–80 mW per phase shifter depending on the
//! phase value**. We model the heater power as proportional to the
//! (wrapped) phase: `P(φ) = P_max · (φ mod 2π) / 2π`.

use crate::mesh::MziMesh;

/// Default maximum static power per phase shifter, in milliwatts.
pub const DEFAULT_MAX_MW: f64 = 80.0;

/// Static power of a single phase shifter holding phase `phi` (radians).
///
/// The phase is wrapped into `[0, 2π)` first: a heater only ever needs to
/// add a positive phase delay of less than one period.
pub fn phase_power_mw(phi: f64, max_mw: f64) -> f64 {
    max_mw * phi.rem_euclid(std::f64::consts::TAU) / std::f64::consts::TAU
}

/// Total static power of every programmable phase in a mesh, in mW.
pub fn mesh_static_power_mw(mesh: &MziMesh, max_mw: f64) -> f64 {
    mesh.phases()
        .iter()
        .map(|&p| phase_power_mw(p, max_mw))
        .sum()
}

/// Expected static power of a mesh with `n_phases` uniformly-random phases:
/// `n · P_max / 2`. Useful as the denominator when comparing architectures
/// whose phases are not yet programmed.
pub fn expected_static_power_mw(n_phases: u64, max_mw: f64) -> f64 {
    n_phases as f64 * max_mw / 2.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::devices::Mzi;
    use std::f64::consts::{PI, TAU};

    #[test]
    fn zero_phase_zero_power() {
        assert_eq!(phase_power_mw(0.0, 80.0), 0.0);
    }

    #[test]
    fn half_turn_half_power() {
        assert!((phase_power_mw(PI, 80.0) - 40.0).abs() < 1e-12);
    }

    #[test]
    fn wraps_beyond_full_turn() {
        assert!((phase_power_mw(TAU + PI, 80.0) - 40.0).abs() < 1e-12);
    }

    #[test]
    fn negative_phase_wraps_positive() {
        // -pi/2 is the same heater setting as 3pi/2.
        assert!((phase_power_mw(-PI / 2.0, 80.0) - 60.0).abs() < 1e-12);
    }

    #[test]
    fn power_bounded_by_max() {
        for k in 0..100 {
            let p = phase_power_mw(k as f64 * 0.37, 80.0);
            assert!((0.0..80.0).contains(&p));
        }
    }

    #[test]
    fn mesh_power_sums_phases() {
        let mesh = MziMesh::new(2, vec![Mzi::new(0, PI, PI)], vec![PI, 0.0]);
        // theta + phi + one output phase = 3 half-turns = 120 mW.
        assert!((mesh_static_power_mw(&mesh, 80.0) - 120.0).abs() < 1e-9);
    }

    #[test]
    fn expected_power_is_half_max_per_phase() {
        assert!((expected_static_power_mw(10, 80.0) - 400.0).abs() < 1e-12);
    }
}
