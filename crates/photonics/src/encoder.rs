//! Optical input encoders (paper §III-B, Fig. 3).
//!
//! Three encoders are modelled at field level:
//!
//! * [`DcComplexEncoder`] — the paper's proposal (Fig. 3a): two modulators
//!   drive `√2·A₁` and `√2·A₂` into a 50:50 directional coupler whose
//!   diagonal adds π/2, so the **top output port carries `A₁ + j·A₂`**.
//!   No thermo-optic phase shifter sits in the data path, hence no thermal
//!   time bottleneck at high throughput.
//! * [`PsComplexEncoder`] — the prior approach (Fig. 3b, Zhang 2021 \[16\]):
//!   one modulator sets the amplitude and a thermo-optic PS sets the phase.
//!   Functionally equivalent but rate-limited by the heater time constant.
//! * [`RealEncoder`] — the conventional ONN (Fig. 3c): amplitude only, the
//!   phase stays at the static reference.

use crate::count::DeviceCount;
use crate::devices::directional_coupler;
use oplix_linalg::Complex64;
use std::f64::consts::SQRT_2;

/// Thermo-optic phase-shifter settling time, seconds. Representative of
/// integrated heaters (tens of microseconds).
pub const THERMAL_SETTLING_S: f64 = 10e-6;
/// High-speed modulator symbol time, seconds (tens of GHz — the paper cites
/// >100 GHz detection \[15\]; we use a conservative 10 GHz).
pub const MODULATOR_SYMBOL_S: f64 = 100e-12;

/// An encoder turns pairs of real values into complex optical fields.
pub trait ComplexEncoder {
    /// Encodes one pair of real values into one complex field sample.
    fn encode_pair(&self, a1: f64, a2: f64) -> Complex64;

    /// Encodes a slice of `(a1, a2)` pairs.
    fn encode(&self, pairs: &[(f64, f64)]) -> Vec<Complex64> {
        pairs.iter().map(|&(a, b)| self.encode_pair(a, b)).collect()
    }

    /// Time to emit one symbol, seconds. Determines throughput.
    fn symbol_time_s(&self) -> f64;

    /// Extra optical devices per complex channel (beyond the mesh).
    fn devices_per_channel(&self) -> DeviceCount;
}

/// The proposed DC-based complex encoder (Fig. 3a).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DcComplexEncoder;

impl DcComplexEncoder {
    /// Creates the encoder.
    pub fn new() -> Self {
        DcComplexEncoder
    }

    /// Field-level simulation through the actual DC transfer matrix,
    /// returning `(top, bottom)` output ports. The top port carries
    /// `A₁ + j·A₂`; the bottom port (`j·A₁ + A₂`) is discarded on chip.
    pub fn encode_ports(&self, a1: f64, a2: f64) -> (Complex64, Complex64) {
        let dc = directional_coupler();
        let out = dc.mul_vec(&[
            Complex64::from_real(SQRT_2 * a1),
            // The 90° shift of the bottom signal (paper §III-B-1) is the
            // coupler's own diagonal π/2 — no tunable PS is required, which
            // is exactly why this encoder has no thermal bottleneck.
            Complex64::from_real(SQRT_2 * a2),
        ]);
        (out[0], out[1])
    }
}

impl ComplexEncoder for DcComplexEncoder {
    fn encode_pair(&self, a1: f64, a2: f64) -> Complex64 {
        self.encode_ports(a1, a2).0
    }

    fn symbol_time_s(&self) -> f64 {
        // Only high-speed modulators in the path.
        MODULATOR_SYMBOL_S
    }

    fn devices_per_channel(&self) -> DeviceCount {
        DeviceCount {
            extra_dcs: 1,
            modulators: 2,
            ..Default::default()
        }
    }
}

/// The PS-based complex encoder of prior work (Fig. 3b).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PsComplexEncoder;

impl PsComplexEncoder {
    /// Creates the encoder.
    pub fn new() -> Self {
        PsComplexEncoder
    }
}

impl ComplexEncoder for PsComplexEncoder {
    fn encode_pair(&self, a1: f64, a2: f64) -> Complex64 {
        // Amplitude |A|, phase arg(A1 + i A2): mathematically identical
        // output, produced by modulator + thermo-optic PS.
        let target = Complex64::new(a1, a2);
        Complex64::from_polar(target.abs(), target.arg())
    }

    fn symbol_time_s(&self) -> f64 {
        // The heater dominates: phase must settle before each new symbol.
        THERMAL_SETTLING_S
    }

    fn devices_per_channel(&self) -> DeviceCount {
        DeviceCount {
            extra_pss: 1,
            modulators: 1,
            ..Default::default()
        }
    }
}

/// The conventional amplitude-only encoder (Fig. 3c).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RealEncoder;

impl RealEncoder {
    /// Creates the encoder.
    pub fn new() -> Self {
        RealEncoder
    }

    /// Encodes one real value onto the field amplitude (phase 0).
    pub fn encode_value(&self, a: f64) -> Complex64 {
        Complex64::from_real(a)
    }

    /// Encodes a slice of real values.
    pub fn encode(&self, values: &[f64]) -> Vec<Complex64> {
        values.iter().map(|&a| self.encode_value(a)).collect()
    }

    /// Extra devices per (real) channel.
    pub fn devices_per_channel(&self) -> DeviceCount {
        DeviceCount {
            modulators: 1,
            ..Default::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dc_encoder_top_port_is_a1_plus_j_a2() {
        let enc = DcComplexEncoder::new();
        for &(a1, a2) in &[(1.0, 0.0), (0.0, 1.0), (0.5, -0.7), (-1.2, 0.3)] {
            let z = enc.encode_pair(a1, a2);
            assert!(
                (z - Complex64::new(a1, a2)).abs() < 1e-12,
                "({a1}, {a2}) -> {z}"
            );
        }
    }

    #[test]
    fn dc_encoder_discarded_port_carries_mirror() {
        let enc = DcComplexEncoder::new();
        let (_, bottom) = enc.encode_ports(0.6, 0.8);
        // Bottom port: j*A1 + A2 (energy conservation partner).
        assert!((bottom - Complex64::new(0.8, 0.6)).abs() < 1e-12);
    }

    #[test]
    fn dc_encoder_conserves_energy() {
        let enc = DcComplexEncoder::new();
        let (top, bottom) = enc.encode_ports(0.3, -0.9);
        let input_energy = 2.0 * (0.3f64.powi(2) + 0.9f64.powi(2));
        assert!((top.norm_sqr() + bottom.norm_sqr() - input_energy).abs() < 1e-12);
    }

    #[test]
    fn ps_encoder_matches_dc_encoder_output() {
        // §III-B claim: same encoded value, different hardware path.
        let dc = DcComplexEncoder::new();
        let ps = PsComplexEncoder::new();
        for &(a1, a2) in &[(0.1, 0.2), (-0.5, 0.5), (1.0, -1.0)] {
            let zd = dc.encode_pair(a1, a2);
            let zp = ps.encode_pair(a1, a2);
            assert!((zd - zp).abs() < 1e-12);
        }
    }

    #[test]
    fn dc_encoder_is_orders_of_magnitude_faster() {
        let dc = DcComplexEncoder::new();
        let ps = PsComplexEncoder::new();
        assert!(ps.symbol_time_s() / dc.symbol_time_s() > 1e3);
    }

    #[test]
    fn real_encoder_keeps_phase_zero() {
        let enc = RealEncoder::new();
        let z = enc.encode_value(0.7);
        assert_eq!(z.arg(), 0.0);
        assert!((z.abs() - 0.7).abs() < 1e-12);
    }

    #[test]
    fn device_inventories() {
        assert_eq!(DcComplexEncoder::new().devices_per_channel().extra_dcs, 1);
        assert_eq!(DcComplexEncoder::new().devices_per_channel().extra_pss, 0);
        assert_eq!(PsComplexEncoder::new().devices_per_channel().extra_pss, 1);
        assert_eq!(RealEncoder::new().devices_per_channel().modulators, 1);
    }

    #[test]
    fn batch_encode() {
        let enc = DcComplexEncoder::new();
        let out = enc.encode(&[(1.0, 2.0), (3.0, 4.0)]);
        assert_eq!(out.len(), 2);
        assert!((out[1] - Complex64::new(3.0, 4.0)).abs() < 1e-12);
    }
}
