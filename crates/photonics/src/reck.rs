//! Reck triangular decomposition of a unitary into MZI phases.
//!
//! Reck et al. (PRL 1994, the paper's ref. \[14\]) showed that any `N×N`
//! unitary can be realised by a triangular arrangement of `N(N−1)/2` MZIs
//! plus `N` output phase shifters. The algorithm nulls the below-diagonal
//! elements of `U` row by row (bottom row first, left to right) by
//! right-multiplying with inverse MZI transfer matrices acting on adjacent
//! column pairs; what remains is a diagonal phase screen.

use crate::devices::Mzi;
use crate::mesh::MziMesh;
use oplix_linalg::{CMatrix, Complex64};

/// Decomposes a unitary matrix into a Reck-style triangular MZI mesh.
///
/// # Panics
///
/// Panics if `u` is not square or not unitary to within `1e-8`.
///
/// # Example
///
/// ```
/// use oplix_linalg::CMatrix;
/// use oplix_photonics::reck::decompose_reck;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(5);
/// let u = CMatrix::random_unitary(6, &mut rng);
/// let mesh = decompose_reck(&u);
/// assert_eq!(mesh.mzi_count(), 6 * 5 / 2);
/// assert!(mesh.matrix().max_abs_diff(&u) < 1e-8);
/// ```
pub fn decompose_reck(u: &CMatrix) -> MziMesh {
    let n = u.rows();
    assert_eq!(n, u.cols(), "decompose_reck requires a square matrix");
    assert!(
        u.is_unitary(1e-8),
        "decompose_reck requires a unitary matrix"
    );

    if n == 0 {
        return MziMesh::identity(0);
    }

    let mut work = u.clone();
    let mut mzis: Vec<Mzi> = Vec::with_capacity(n * (n - 1) / 2);

    // Null below-diagonal entries row by row from the bottom. Nulling
    // element (r, c) right-multiplies by T^H on columns (c, c+1); columns
    // to the left are untouched, so previously nulled entries survive.
    for r in (1..n).rev() {
        for c in 0..r {
            let (theta, phi) = null_from_right(&mut work, r, c);
            mzis.push(Mzi::new(c, theta, phi));
        }
    }

    // work is now diagonal with unit-modulus entries: the output screen.
    let output_phases: Vec<f64> = (0..n).map(|i| work[(i, i)].arg()).collect();

    // U · T_1^H · T_2^H ⋯ = D  =>  U = D · T_k ⋯ T_1, so the first-nulled
    // MZI is applied to the input first — exactly the order in `mzis`.
    MziMesh::new(n, mzis, output_phases)
}

/// Chooses `(theta, phi)` so that right-multiplying `work` by
/// `T(theta, phi)^H` acting on columns `(c, c+1)` nulls `work[(r, c)]`, and
/// applies the update in place.
///
/// With `a = work[(r,c)]` and `b = work[(r,c+1)]` the nulling condition is
/// `a·e^{−iφ}·sin(θ/2) + b·cos(θ/2) = 0`, solved by
/// `φ = arg(a·conj(−b))` and `θ = 2·atan2(|b|, |a|)`.
pub(crate) fn null_from_right(work: &mut CMatrix, r: usize, c: usize) -> (f64, f64) {
    let a = work[(r, c)];
    let b = work[(r, c + 1)];
    let phi = (a * (-b).conj()).arg();
    let theta = 2.0 * b.abs().atan2(a.abs());

    apply_t_dagger_right(work, c, theta, phi);
    // Clamp the nulled entry against round-off.
    work[(r, c)] = Complex64::ZERO;
    (theta, phi)
}

/// In-place right multiplication `work ← work · T(θ,φ)^H` on column pair
/// `(c, c+1)`.
pub(crate) fn apply_t_dagger_right(work: &mut CMatrix, c: usize, theta: f64, phi: f64) {
    let t = Mzi::new(0, theta, phi).transfer();
    // (work · T^H)[i][c]   = work[i][c]·conj(T[0][0]) + work[i][c+1]·conj(T[0][1])
    // (work · T^H)[i][c+1] = work[i][c]·conj(T[1][0]) + work[i][c+1]·conj(T[1][1])
    let t00 = t[(0, 0)].conj();
    let t01 = t[(0, 1)].conj();
    let t10 = t[(1, 0)].conj();
    let t11 = t[(1, 1)].conj();
    for i in 0..work.rows() {
        let x = work[(i, c)];
        let y = work[(i, c + 1)];
        work[(i, c)] = x * t00 + y * t01;
        work[(i, c + 1)] = x * t10 + y * t11;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn reconstructs_random_unitaries() {
        let mut rng = StdRng::seed_from_u64(1);
        for n in [1usize, 2, 3, 4, 5, 8, 12, 16] {
            let u = CMatrix::random_unitary(n, &mut rng);
            let mesh = decompose_reck(&u);
            assert_eq!(mesh.mzi_count(), n * (n - 1) / 2, "n = {n}");
            let err = mesh.matrix().max_abs_diff(&u);
            assert!(err < 1e-9, "n = {n}, err = {err}");
        }
    }

    #[test]
    fn identity_decomposes_to_trivial_phases() {
        let u = CMatrix::identity(4);
        let mesh = decompose_reck(&u);
        assert!(mesh.matrix().max_abs_diff(&u) < 1e-10);
    }

    #[test]
    fn diagonal_phase_matrix_round_trips() {
        let u = CMatrix::from_fn(3, 3, |i, j| {
            if i == j {
                Complex64::cis(1.0 + i as f64)
            } else {
                Complex64::ZERO
            }
        });
        let mesh = decompose_reck(&u);
        assert!(mesh.matrix().max_abs_diff(&u) < 1e-10);
    }

    #[test]
    fn permutation_matrix_round_trips() {
        // A cyclic shift is a hard case: every nulling is a full swap.
        let n = 5;
        let u = CMatrix::from_fn(n, n, |i, j| {
            if (i + 1) % n == j {
                Complex64::ONE
            } else {
                Complex64::ZERO
            }
        });
        assert!(u.is_unitary(1e-12));
        let mesh = decompose_reck(&u);
        assert!(mesh.matrix().max_abs_diff(&u) < 1e-9);
    }

    #[test]
    fn reck_depth_is_linear_chain() {
        let mut rng = StdRng::seed_from_u64(2);
        let n = 8;
        let u = CMatrix::random_unitary(n, &mut rng);
        let mesh = decompose_reck(&u);
        // Triangle depth is at most 2n - 3.
        assert!(mesh.depth() <= 2 * n - 3);
    }

    #[test]
    #[should_panic(expected = "unitary")]
    fn rejects_non_unitary() {
        let a = CMatrix::from_fn(3, 3, |i, j| Complex64::new((i + j) as f64, 0.0));
        let _ = decompose_reck(&a);
    }
}
