//! Optical insertion-loss and latency models.
//!
//! Beyond static power, two more hardware figures of merit scale with the
//! mesh geometry and favour smaller ONNs:
//!
//! * **Insertion loss** — every directional coupler and waveguide crossing
//!   attenuates the signal; total loss grows with the *optical depth*
//!   (number of MZI columns light traverses), so the split ONN's smaller
//!   meshes also have better signal-to-noise at the photodiodes.
//! * **Latency** — time of flight through the mesh, again proportional to
//!   depth. The paper cites >100 GHz detection \[15\]; the mesh adds only
//!   picoseconds, which this model quantifies.

use crate::mesh::MziMesh;

/// Loss/latency parameters of a silicon-photonic platform.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct OpticalLossModel {
    /// Insertion loss per MZI (two DCs plus waveguide), in dB.
    pub mzi_loss_db: f64,
    /// Propagation delay per mesh column, in picoseconds (≈ the group
    /// delay of one MZI length of waveguide).
    pub column_delay_ps: f64,
}

impl OpticalLossModel {
    /// Representative values: 0.3 dB per MZI, 4 ps per column (~300 µm of
    /// silicon waveguide at group index ≈ 4).
    pub fn silicon_defaults() -> Self {
        OpticalLossModel {
            mzi_loss_db: 0.3,
            column_delay_ps: 4.0,
        }
    }

    /// Worst-case optical insertion loss of a mesh in dB: the deepest path
    /// traverses `depth` MZIs.
    pub fn worst_path_loss_db(&self, mesh: &MziMesh) -> f64 {
        self.mzi_loss_db * mesh.depth() as f64
    }

    /// Power transmission (linear) along the worst-case path.
    pub fn worst_path_transmission(&self, mesh: &MziMesh) -> f64 {
        10f64.powf(-self.worst_path_loss_db(mesh) / 10.0)
    }

    /// Time-of-flight latency through the mesh, picoseconds.
    pub fn latency_ps(&self, mesh: &MziMesh) -> f64 {
        self.column_delay_ps * mesh.depth() as f64
    }
}

impl Default for OpticalLossModel {
    fn default() -> Self {
        Self::silicon_defaults()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clements::decompose_clements;
    use crate::reck::decompose_reck;
    use oplix_linalg::CMatrix;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn loss_scales_with_depth() {
        let model = OpticalLossModel::silicon_defaults();
        let mut rng = StdRng::seed_from_u64(1);
        let u = CMatrix::random_unitary(10, &mut rng);
        let clements = decompose_clements(&u);
        let reck = decompose_reck(&u);
        // Clements is shallower, so loses less light and is faster.
        assert!(model.worst_path_loss_db(&clements) < model.worst_path_loss_db(&reck));
        assert!(model.latency_ps(&clements) < model.latency_ps(&reck));
    }

    #[test]
    fn transmission_is_probability_like() {
        let model = OpticalLossModel::silicon_defaults();
        let mut rng = StdRng::seed_from_u64(2);
        for n in [2usize, 6, 12] {
            let u = CMatrix::random_unitary(n, &mut rng);
            let mesh = decompose_clements(&u);
            let t = model.worst_path_transmission(&mesh);
            assert!((0.0..=1.0).contains(&t));
        }
    }

    #[test]
    fn identity_mesh_is_lossless_and_instant() {
        let model = OpticalLossModel::silicon_defaults();
        let mesh = crate::mesh::MziMesh::identity(4);
        assert_eq!(model.worst_path_loss_db(&mesh), 0.0);
        assert_eq!(model.latency_ps(&mesh), 0.0);
        assert_eq!(model.worst_path_transmission(&mesh), 1.0);
    }

    #[test]
    fn split_onn_loses_less_light() {
        // A 784-wide conventional mesh vs a 392-wide split mesh: the split
        // network's worst path is about half as lossy. Use small stand-ins
        // with the same 2:1 ratio.
        let model = OpticalLossModel::silicon_defaults();
        let mut rng = StdRng::seed_from_u64(3);
        let big = decompose_clements(&CMatrix::random_unitary(16, &mut rng));
        let small = decompose_clements(&CMatrix::random_unitary(8, &mut rng));
        let loss_ratio = model.worst_path_loss_db(&small) / model.worst_path_loss_db(&big);
        assert!((0.3..0.7).contains(&loss_ratio), "ratio {loss_ratio}");
    }
}
