//! Optical output detection and decoding (paper §III-D, Fig. 6).
//!
//! A photodiode measures only intensity `|z|²`; the phase half of a complex
//! output is lost unless extra machinery recovers it. The paper compares:
//!
//! * [`photodiode`] detection — the conventional ONN output.
//! * [`CoherentDetector`] — interference with a reference beam (Fig. 6c,
//!   Zhang 2021 \[16\]): recovers `Re(z)` and `Im(z)` exactly but needs a
//!   reference light, a phase-shifting step per measurement and electronic
//!   post-processing.
//! * the **learnable decoders** (Fig. 6a/b) — these are *trained* network
//!   layers; their learnable halves live in `oplix-nn::decoder`, while this
//!   module provides their device/area accounting and the field-level
//!   detection math shared with training.

use crate::count::{mzi_count, DeviceCount};
use oplix_linalg::Complex64;

/// Intensity detection of one field sample: `|z|²`.
#[inline]
pub fn photodiode(z: Complex64) -> f64 {
    z.norm_sqr()
}

/// Intensity detection of a field vector.
pub fn photodiode_vec(z: &[Complex64]) -> Vec<f64> {
    z.iter().map(|&v| photodiode(v)).collect()
}

/// Differential intensity readout used by the learnable *merging* decoder
/// (Fig. 6a): the last layer's output width is doubled to `2K` complex
/// values and class logit `k` is `|z_k|² − |z_{k+K}|²`.
///
/// This is photodiode-only (no reference beam, no post-processing) and is
/// exactly the detection model `oplix-nn`'s merge decoder trains through.
///
/// # Panics
///
/// Panics if `z.len()` is odd.
pub fn differential_photodiode(z: &[Complex64]) -> Vec<f64> {
    assert!(
        z.len().is_multiple_of(2),
        "differential detection needs an even number of outputs"
    );
    let k = z.len() / 2;
    (0..k)
        .map(|i| z[i].norm_sqr() - z[i + k].norm_sqr())
        .collect()
}

/// Coherent detection with a reference beam of known real amplitude `r`
/// (Fig. 6c).
///
/// Three intensity measurements are combined per output:
/// `|z + r|²`, `|z + i·r|²` and `|z|²`, giving
/// `Re(z) = (|z+r|² − |z|² − r²) / 2r` and
/// `Im(z) = (|z+ir|² − |z|² − r²) / 2r`.
///
/// The three measurements model the *additional time* the paper criticises:
/// the reference phase must be stepped between them.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CoherentDetector {
    /// Reference beam amplitude (must be positive).
    pub reference_amplitude: f64,
}

impl CoherentDetector {
    /// Creates a detector with the given reference amplitude.
    ///
    /// # Panics
    ///
    /// Panics if `reference_amplitude <= 0`.
    pub fn new(reference_amplitude: f64) -> Self {
        assert!(
            reference_amplitude > 0.0,
            "reference amplitude must be positive"
        );
        CoherentDetector {
            reference_amplitude,
        }
    }

    /// Recovers `(Re(z), Im(z))` from the three intensity measurements.
    pub fn detect(&self, z: Complex64) -> (f64, f64) {
        let r = self.reference_amplitude;
        let ref_re = Complex64::from_real(r);
        let ref_im = Complex64::new(0.0, r);
        let i0 = photodiode(z);
        let i1 = photodiode(z + ref_re);
        let i2 = photodiode(z + ref_im);
        let re = (i1 - i0 - r * r) / (2.0 * r);
        let im = (i2 - i0 - r * r) / (2.0 * r);
        (re, im)
    }

    /// Recovers the complex field vector from per-mode coherent detection.
    pub fn detect_vec(&self, z: &[Complex64]) -> Vec<Complex64> {
        z.iter()
            .map(|&v| {
                let (re, im) = self.detect(v);
                Complex64::new(re, im)
            })
            .collect()
    }

    /// Number of sequential intensity measurements per symbol (the phase
    /// stepping the paper's §II-B criticises).
    pub fn measurements_per_symbol(&self) -> usize {
        3
    }
}

/// Which output decoding scheme a network uses; determines the device
/// budget of the output stage (Fig. 9's area axis).
///
/// Every *learnable* decoder must leave the photodiodes enough intensity
/// channels to preserve the complex output information, so each produces
/// `2K` optical outputs for `K` classes, read out differentially
/// ([`differential_photodiode`]). They differ in where the extra width
/// comes from, which is what drives the area ordering of Fig. 9.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DecoderKind {
    /// Learnable merging decoder (proposed, Fig. 6a): the last layer's
    /// output width doubles from `K` to `2K` — no separate decoder stage.
    Merge,
    /// Learnable extra complex linear layer `2K×K` appended after the last
    /// layer (Fig. 6b), then differential photodiodes.
    Linear,
    /// Learnable extra unitary layer (a pure `2K×2K` MZI array on the `K`
    /// outputs plus `K` ancilla modes, Fig. 6b), then differential
    /// photodiodes.
    Unitary,
    /// Coherent detection with a reference beam (Fig. 6c); no extra mesh,
    /// but extra measurement time and electronic post-processing.
    Coherent,
}

/// How a deployed network's optical outputs are detected electronically.
///
/// This is the hardware-side twin of [`DecoderKind`]: every decoder scheme
/// resolves to one of these three physical readouts (see
/// [`DecoderKind::detection`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Detection {
    /// Differential photodiodes over a doubled output bank
    /// ([`differential_photodiode`]) — the merging decoder's readout.
    Differential,
    /// Photodiode amplitude readout: the diode measures `|z|²` and the
    /// electronics take the square root (conventional ONN).
    Intensity,
    /// Coherent detection: logits are the real parts of the fields.
    CoherentReal,
}

impl DecoderKind {
    /// The physical detection scheme this decoder reads out through.
    ///
    /// The linear and unitary decoders keep their learnable stage in
    /// network form (an extra layer); their optical readout is the same
    /// differential photodiode bank as the merging decoder.
    pub fn detection(&self) -> Detection {
        match self {
            DecoderKind::Merge | DecoderKind::Linear | DecoderKind::Unitary => {
                Detection::Differential
            }
            DecoderKind::Coherent => Detection::CoherentReal,
        }
    }

    /// Extra MZIs the decoder adds to a network whose last layer maps
    /// `n_in → K` classes.
    ///
    /// * `Merge`: widening the last layer `K×n_in → 2K×n_in` costs
    ///   `mzi(2K, n_in) − mzi(K, n_in)`.
    /// * `Linear`: a full extra `2K×K` SVD layer.
    /// * `Unitary`: a `2K×2K` MZI array only — `2K(2K−1)/2`.
    /// * `Coherent`: zero extra MZIs (reference optics are not MZIs).
    ///
    /// For typical class counts (`K` small relative to `n_in`) this gives
    /// the paper's ordering: Coherent < Merge < Unitary < Linear.
    pub fn extra_mzis(&self, n_in: u64, k: u64) -> u64 {
        match self {
            DecoderKind::Merge => mzi_count(2 * k, n_in) - mzi_count(k, n_in),
            DecoderKind::Linear => mzi_count(2 * k, k),
            DecoderKind::Unitary => 2 * k * (2 * k - 1) / 2,
            DecoderKind::Coherent => 0,
        }
    }

    /// Extra photodiodes over the `K` baseline (all learnable decoders
    /// detect `2K` channels differentially).
    pub fn extra_photodiodes(&self, k: u64) -> u64 {
        match self {
            DecoderKind::Coherent => 0,
            _ => k,
        }
    }

    /// Full extra device inventory.
    pub fn extra_devices(&self, n_in: u64, k: u64) -> DeviceCount {
        DeviceCount {
            mzis: self.extra_mzis(n_in, k),
            photodiodes: self.extra_photodiodes(k),
            ..Default::default()
        }
    }

    /// Whether the scheme needs a coherent reference beam.
    pub fn needs_reference(&self) -> bool {
        matches!(self, DecoderKind::Coherent)
    }

    /// Whether the scheme needs electronic post-processing after detection.
    pub fn needs_postprocessing(&self) -> bool {
        matches!(self, DecoderKind::Coherent)
    }

    /// All four schemes, in the paper's Fig. 9 order.
    pub fn all() -> [DecoderKind; 4] {
        [
            DecoderKind::Merge,
            DecoderKind::Linear,
            DecoderKind::Unitary,
            DecoderKind::Coherent,
        ]
    }
}

impl std::fmt::Display for DecoderKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            DecoderKind::Merge => "Merge",
            DecoderKind::Linear => "Linear",
            DecoderKind::Unitary => "Unitary",
            DecoderKind::Coherent => "Coherent",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn photodiode_measures_intensity() {
        assert!((photodiode(Complex64::new(3.0, 4.0)) - 25.0).abs() < 1e-12);
    }

    #[test]
    fn differential_detection_pairs_outputs() {
        let z = vec![
            Complex64::new(2.0, 0.0),
            Complex64::new(0.0, 1.0),
            Complex64::new(1.0, 0.0),
            Complex64::new(0.0, 0.0),
        ];
        let logits = differential_photodiode(&z);
        assert_eq!(logits.len(), 2);
        assert!((logits[0] - (4.0 - 1.0)).abs() < 1e-12);
        assert!((logits[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "even number")]
    fn differential_detection_rejects_odd() {
        let _ = differential_photodiode(&[Complex64::ONE]);
    }

    #[test]
    fn coherent_detector_recovers_field_exactly() {
        let det = CoherentDetector::new(2.0);
        for &z in &[
            Complex64::new(0.5, -0.25),
            Complex64::new(-1.0, 1.0),
            Complex64::ZERO,
        ] {
            let (re, im) = det.detect(z);
            assert!((re - z.re).abs() < 1e-12);
            assert!((im - z.im).abs() < 1e-12);
        }
    }

    #[test]
    fn coherent_detection_needs_three_measurements() {
        assert_eq!(CoherentDetector::new(1.0).measurements_per_symbol(), 3);
        assert!(DecoderKind::Coherent.needs_reference());
        assert!(DecoderKind::Coherent.needs_postprocessing());
        assert!(!DecoderKind::Merge.needs_reference());
    }

    #[test]
    fn merge_decoder_is_cheapest_learnable() {
        // Paper §III-D: merging into the last layer costs fewer MZIs than a
        // separate linear/unitary decoder layer when the class count is
        // small relative to the fan-in.
        let n_in = 50;
        let k = 10;
        let merge = DecoderKind::Merge.extra_mzis(n_in, k);
        let linear = DecoderKind::Linear.extra_mzis(n_in, k);
        let unitary = DecoderKind::Unitary.extra_mzis(n_in, k);
        assert!(
            merge > 0 && merge < unitary && unitary < linear,
            "merge = {merge}, unitary = {unitary}, linear = {linear}"
        );
    }

    #[test]
    fn merge_extra_cost_example() {
        // 2K x n minus K x n for K=10, n=50:
        // mzi(20,50) = 1225+20+190 = 1435; mzi(10,50) = 1225+10+45 = 1280.
        assert_eq!(DecoderKind::Merge.extra_mzis(50, 10), 155);
    }

    #[test]
    fn decoder_costs_for_fcnn_head() {
        // K = 10 classes on a 50-wide last layer:
        // merge: mzi(20,50) - mzi(10,50) = 1435 - 1280 = 155
        // unitary: 20*19/2 = 190, linear: mzi(20,10) = 45+10+190 = 245.
        assert_eq!(DecoderKind::Merge.extra_mzis(50, 10), 155);
        assert_eq!(DecoderKind::Unitary.extra_mzis(50, 10), 190);
        assert_eq!(DecoderKind::Linear.extra_mzis(50, 10), 245);
    }

    #[test]
    fn coherent_adds_no_mzis() {
        assert_eq!(DecoderKind::Coherent.extra_mzis(100, 10), 0);
        assert_eq!(
            DecoderKind::Coherent.extra_devices(100, 10),
            DeviceCount::default()
        );
    }

    #[test]
    fn display_names() {
        let names: Vec<String> = DecoderKind::all().iter().map(|d| d.to_string()).collect();
        assert_eq!(names, vec!["Merge", "Linear", "Unitary", "Coherent"]);
    }
}
