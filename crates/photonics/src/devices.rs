//! Elementary photonic devices: directional couplers, thermo-optic phase
//! shifters, Mach–Zehnder interferometers and optical attenuators.
//!
//! Conventions follow the paper's Eq. (1) exactly. A 50:50 directional
//! coupler transmits half of the optical power to each output port and adds
//! a π/2 phase shift on the diagonal path:
//!
//! ```text
//! DC = 1/√2 · [ 1  i ]
//!             [ i  1 ]
//! ```
//!
//! A phase shifter on the top arm is `diag(e^{iα}, 1)`, and an MZI is
//! `DC · PS(θ) · DC · PS(φ)`.

use oplix_linalg::{CMatrix, Complex64};

/// The 2×2 transfer matrix of an ideal 50:50 directional coupler.
///
/// # Example
///
/// ```
/// use oplix_photonics::devices::directional_coupler;
///
/// let dc = directional_coupler();
/// assert!(dc.is_unitary(1e-12));
/// ```
pub fn directional_coupler() -> CMatrix {
    let s = std::f64::consts::FRAC_1_SQRT_2;
    CMatrix::from_rows(&[
        vec![Complex64::new(s, 0.0), Complex64::new(0.0, s)],
        vec![Complex64::new(0.0, s), Complex64::new(s, 0.0)],
    ])
}

/// The 2×2 transfer matrix of a directional coupler with an arbitrary power
/// splitting ratio `t : 1-t` (`t` is the *through* power fraction).
///
/// # Panics
///
/// Panics if `t` is outside `[0, 1]`.
pub fn directional_coupler_ratio(t: f64) -> CMatrix {
    assert!((0.0..=1.0).contains(&t), "power ratio must be in [0, 1]");
    let c = t.sqrt();
    let s = (1.0 - t).sqrt();
    CMatrix::from_rows(&[
        vec![Complex64::new(c, 0.0), Complex64::new(0.0, s)],
        vec![Complex64::new(0.0, s), Complex64::new(c, 0.0)],
    ])
}

/// The 2×2 transfer matrix of a phase shifter of angle `alpha` on the top
/// arm: `diag(e^{iα}, 1)`.
pub fn phase_shifter(alpha: f64) -> CMatrix {
    CMatrix::from_rows(&[
        vec![Complex64::cis(alpha), Complex64::ZERO],
        vec![Complex64::ZERO, Complex64::ONE],
    ])
}

/// One Mach–Zehnder interferometer: internal phase `theta`, external phase
/// `phi`, acting on waveguide modes `(mode, mode + 1)`.
///
/// The MZI is the unit cell of every mesh in this crate; `theta` controls
/// the power splitting and `phi` the relative phase, per the paper's
/// Eq. (1).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Mzi {
    /// Index of the upper of the two adjacent modes this MZI couples.
    pub mode: usize,
    /// Internal phase shift θ (between the two directional couplers).
    pub theta: f64,
    /// External phase shift φ (at the input of the first coupler).
    pub phi: f64,
}

impl Mzi {
    /// Creates an MZI on modes `(mode, mode+1)` with the given phases.
    pub fn new(mode: usize, theta: f64, phi: f64) -> Self {
        Mzi { mode, theta, phi }
    }

    /// The four entries `[t00, t01, t10, t11]` of the 2×2 transfer matrix,
    /// in row-major order.
    ///
    /// This is the **single source** of the MZI's transfer coefficients:
    /// [`Mzi::transfer`], [`Mzi::apply`] and the compiled kernels
    /// ([`crate::compiled::CompiledMesh`]) all evaluate exactly this
    /// function, so a mesh baked into precomputed coefficients at deploy
    /// time produces *bitwise identical* fields to the interpreted
    /// per-sample walk.
    ///
    /// Closed form:
    /// `i·e^{iθ/2} · [[e^{iφ}·sin(θ/2), cos(θ/2)], [e^{iφ}·cos(θ/2), −sin(θ/2)]]`.
    #[inline]
    pub fn coefficients(&self) -> [Complex64; 4] {
        let half = self.theta / 2.0;
        let s = half.sin();
        let c = half.cos();
        let pre = Complex64::i() * Complex64::cis(half);
        let ephi = Complex64::cis(self.phi);
        [pre * ephi * s, pre * c, pre * ephi * c, pre * (-s)]
    }

    /// The 2×2 transfer matrix `DC · PS(θ) · DC · PS(φ)`; see
    /// [`Mzi::coefficients`] for the closed form.
    pub fn transfer(&self) -> CMatrix {
        let [t00, t01, t10, t11] = self.coefficients();
        CMatrix::from_rows(&[vec![t00, t01], vec![t10, t11]])
    }

    /// Applies this MZI in place to a field vector, evaluating
    /// [`Mzi::coefficients`] and applying the 2×2 product — the exact
    /// operation the compiled kernels replay from precomputed
    /// coefficients.
    ///
    /// # Panics
    ///
    /// Panics if `fields.len() < self.mode + 2`.
    #[inline]
    pub fn apply(&self, fields: &mut [Complex64]) {
        let [t00, t01, t10, t11] = self.coefficients();
        let a = fields[self.mode];
        let b = fields[self.mode + 1];
        fields[self.mode] = t00 * a + t01 * b;
        fields[self.mode + 1] = t10 * a + t11 * b;
    }

    /// Total static power drawn by the two thermo-optic phase shifters of
    /// this MZI, in milliwatts (see [`crate::power`]).
    pub fn static_power_mw(&self, max_mw: f64) -> f64 {
        crate::power::phase_power_mw(self.theta, max_mw)
            + crate::power::phase_power_mw(self.phi, max_mw)
    }
}

/// A programmable optical attenuator/amplifier implementing the diagonal Σ
/// stage of an SVD-mapped layer. Gains above 1 require (semiconductor)
/// optical amplification; the SVD mapper factors the spectral norm out so
/// that on-chip coefficients stay in `[0, 1]`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Attenuator {
    /// Real amplitude coefficient applied to the field.
    pub coefficient: f64,
}

impl Attenuator {
    /// Creates an attenuator with the given amplitude coefficient.
    pub fn new(coefficient: f64) -> Self {
        Attenuator { coefficient }
    }

    /// Applies the attenuation to a single field value.
    #[inline]
    pub fn apply(&self, field: Complex64) -> Complex64 {
        field.scale(self.coefficient)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    #[test]
    fn dc_is_unitary_and_balanced() {
        let dc = directional_coupler();
        assert!(dc.is_unitary(1e-12));
        // 50:50 power split from a single input.
        let out = dc.mul_vec(&[Complex64::ONE, Complex64::ZERO]);
        assert!((out[0].norm_sqr() - 0.5).abs() < 1e-12);
        assert!((out[1].norm_sqr() - 0.5).abs() < 1e-12);
        // Diagonal path picks up pi/2.
        assert!((out[1].arg() - PI / 2.0).abs() < 1e-12);
    }

    #[test]
    fn dc_ratio_extremes() {
        let through = directional_coupler_ratio(1.0);
        assert!(through.max_abs_diff(&CMatrix::identity(2)) < 1e-12);
        let cross = directional_coupler_ratio(0.0);
        let out = cross.mul_vec(&[Complex64::ONE, Complex64::ZERO]);
        assert!((out[1].norm_sqr() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn phase_shifter_only_rotates_top() {
        let ps = phase_shifter(1.0);
        let out = ps.mul_vec(&[Complex64::ONE, Complex64::ONE]);
        assert!((out[0].arg() - 1.0).abs() < 1e-12);
        assert!((out[1] - Complex64::ONE).abs() < 1e-12);
    }

    #[test]
    fn mzi_transfer_matches_eq1_product() {
        // Eq. (1): T = DC * PS(theta) * DC * PS(phi).
        let theta = 0.7;
        let phi = -1.3;
        let product = directional_coupler()
            .matmul(&phase_shifter(theta))
            .matmul(&directional_coupler())
            .matmul(&phase_shifter(phi));
        let closed = Mzi::new(0, theta, phi).transfer();
        assert!(product.max_abs_diff(&closed) < 1e-12);
    }

    #[test]
    fn mzi_is_unitary_for_any_phases() {
        for &theta in &[0.0, 0.3, PI / 2.0, PI, 5.0] {
            for &phi in &[0.0, 1.0, -2.0, PI] {
                assert!(Mzi::new(0, theta, phi).transfer().is_unitary(1e-12));
            }
        }
    }

    #[test]
    fn mzi_bar_and_cross_states() {
        // theta = pi: full transmission to the "bar" configuration
        // (|T11| = 1), theta = 0: full "cross" (|T12| = 1).
        let bar = Mzi::new(0, PI, 0.0).transfer();
        assert!((bar[(0, 0)].abs() - 1.0).abs() < 1e-12);
        assert!(bar[(0, 1)].abs() < 1e-12);
        let cross = Mzi::new(0, 0.0, 0.0).transfer();
        assert!((cross[(0, 1)].abs() - 1.0).abs() < 1e-12);
        assert!(cross[(0, 0)].abs() < 1e-12);
    }

    #[test]
    fn mzi_apply_matches_transfer_matrix() {
        let mzi = Mzi::new(1, 0.9, 2.1);
        let x = vec![
            Complex64::new(0.2, -0.4),
            Complex64::new(1.0, 0.5),
            Complex64::new(-0.3, 0.8),
            Complex64::new(0.0, 1.0),
        ];
        let mut applied = x.clone();
        mzi.apply(&mut applied);
        let t = mzi.transfer();
        let sub = t.mul_vec(&[x[1], x[2]]);
        assert!((applied[0] - x[0]).abs() < 1e-15);
        assert!((applied[1] - sub[0]).abs() < 1e-12);
        assert!((applied[2] - sub[1]).abs() < 1e-12);
        assert!((applied[3] - x[3]).abs() < 1e-15);
    }

    #[test]
    fn attenuator_scales_field() {
        let a = Attenuator::new(0.5);
        let out = a.apply(Complex64::new(2.0, -2.0));
        assert_eq!(out, Complex64::new(1.0, -1.0));
    }
}
