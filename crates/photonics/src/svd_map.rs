//! SVD-based mapping of an arbitrary weight matrix onto photonic hardware.
//!
//! A (generally non-unitary, rectangular) complex weight `W` (`m×n`) is
//! factored as `W = U Σ V*` and realised as three optical stages
//! (paper §II-A):
//!
//! 1. an `n×n` MZI mesh implementing `V*`,
//! 2. a column of `min(m,n)` attenuators implementing `Σ` (normalised so
//!    every on-chip coefficient is ≤ 1; the spectral norm is factored out
//!    as a single global `gain`), and
//! 3. an `m×m` MZI mesh implementing `U`.

use crate::clements::decompose_clements;
use crate::count::{mzi_count, DeviceCount};
use crate::devices::Attenuator;
use crate::mesh::MziMesh;
use crate::reck::decompose_reck;
use oplix_linalg::svd::svd;
use oplix_linalg::{CMatrix, Complex64};

/// Which mesh layout to use for the two unitary stages.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum MeshStyle {
    /// Rectangular Clements layout (depth `n`). The default.
    #[default]
    Clements,
    /// Triangular Reck layout (depth `2n−3`).
    Reck,
}

/// A weight matrix deployed onto MZI meshes and attenuators.
///
/// # Example
///
/// ```
/// use oplix_linalg::{CMatrix, Complex64};
/// use oplix_photonics::svd_map::{PhotonicLayer, MeshStyle};
///
/// let w = CMatrix::from_fn(2, 3, |i, j| Complex64::new(i as f64 + 1.0, j as f64));
/// let layer = PhotonicLayer::from_matrix(&w, MeshStyle::Clements);
/// let x = vec![Complex64::ONE, Complex64::i(), Complex64::new(0.5, -0.5)];
/// let optical = layer.forward(&x);
/// let exact = w.mul_vec(&x);
/// for (a, b) in optical.iter().zip(&exact) {
///     assert!((*a - *b).abs() < 1e-8);
/// }
/// ```
#[derive(Clone, Debug)]
pub struct PhotonicLayer {
    m: usize,
    n: usize,
    v_mesh: MziMesh,
    attenuators: Vec<Attenuator>,
    gain: f64,
    u_mesh: MziMesh,
}

impl PhotonicLayer {
    /// Maps a complex weight matrix onto meshes and attenuators.
    ///
    /// # Panics
    ///
    /// Panics if `w` has zero rows or columns.
    pub fn from_matrix(w: &CMatrix, style: MeshStyle) -> Self {
        assert!(
            w.rows() > 0 && w.cols() > 0,
            "weight matrix must be non-empty"
        );
        let f = svd(w);
        let m = w.rows();
        let n = w.cols();
        let gain = f.spectral_norm().max(f64::MIN_POSITIVE);
        let attenuators = f.s.iter().map(|&s| Attenuator::new(s / gain)).collect();
        let decompose = |u: &CMatrix| match style {
            MeshStyle::Clements => decompose_clements(u),
            MeshStyle::Reck => decompose_reck(u),
        };
        PhotonicLayer {
            m,
            n,
            v_mesh: decompose(&f.v.hermitian()),
            attenuators,
            gain,
            u_mesh: decompose(&f.u),
        }
    }

    /// Output dimension `m`.
    pub fn output_dim(&self) -> usize {
        self.m
    }

    /// Input dimension `n`.
    pub fn input_dim(&self) -> usize {
        self.n
    }

    /// The global scale factored out of Σ so that all on-chip attenuation
    /// coefficients lie in `[0, 1]`.
    pub fn gain(&self) -> f64 {
        self.gain
    }

    /// The input-side mesh (implements `V*`).
    pub fn v_mesh(&self) -> &MziMesh {
        &self.v_mesh
    }

    /// The output-side mesh (implements `U`).
    pub fn u_mesh(&self) -> &MziMesh {
        &self.u_mesh
    }

    /// The Σ-stage attenuator column, one per singular value (coefficients
    /// in `[0, 1]`; the spectral norm lives in [`PhotonicLayer::gain`]).
    pub fn attenuators(&self) -> &[Attenuator] {
        &self.attenuators
    }

    /// Mutable access to both meshes, for noise-injection studies.
    pub fn meshes_mut(&mut self) -> (&mut MziMesh, &mut MziMesh) {
        (&mut self.v_mesh, &mut self.u_mesh)
    }

    /// Propagates a field vector through `V*`, Σ and `U`.
    ///
    /// # Panics
    ///
    /// Panics if `input.len() != self.input_dim()`.
    pub fn forward(&self, input: &[Complex64]) -> Vec<Complex64> {
        assert_eq!(
            input.len(),
            self.n,
            "input length must equal the layer fan-in"
        );
        let after_v = self.v_mesh.propagate(input);
        // Σ stage: keep min(m, n) modes, attenuate, apply the global gain.
        let k = self.m.min(self.n);
        let mut mid = vec![Complex64::ZERO; self.m];
        for i in 0..k {
            mid[i] = self.attenuators[i].apply(after_v[i]).scale(self.gain);
        }
        self.u_mesh.propagate(&mid)
    }

    /// Allocation-free forward pass: `io` holds the input fields on entry
    /// (length `n`) and the output fields on exit (length `m`); `tmp` is
    /// caller-owned scratch. After warm-up neither vector reallocates, so
    /// a serving loop can push millions of samples through preallocated
    /// buffers.
    ///
    /// # Panics
    ///
    /// Panics if `io.len() != self.input_dim()`.
    pub fn forward_into(&self, io: &mut Vec<Complex64>, tmp: &mut Vec<Complex64>) {
        assert_eq!(io.len(), self.n, "input length must equal the layer fan-in");
        self.v_mesh.propagate_in_place(io);
        // Σ stage: keep min(m, n) modes, attenuate, apply the global gain.
        let k = self.m.min(self.n);
        tmp.clear();
        tmp.resize(self.m, Complex64::ZERO);
        for i in 0..k {
            tmp[i] = self.attenuators[i].apply(io[i]).scale(self.gain);
        }
        self.u_mesh.propagate_in_place(tmp);
        std::mem::swap(io, tmp);
    }

    /// Reconstructs the implemented matrix (should equal `W` up to
    /// numerical error).
    pub fn matrix(&self) -> CMatrix {
        let mut out = CMatrix::zeros(self.m, self.n);
        for j in 0..self.n {
            let mut e = vec![Complex64::ZERO; self.n];
            e[j] = Complex64::ONE;
            let y = self.forward(&e);
            for i in 0..self.m {
                out[(i, j)] = y[i];
            }
        }
        out
    }

    /// Device inventory of this layer. The mesh MZIs plus one MZI-equivalent
    /// attenuator per singular value reproduce the paper's
    /// `n(n−1)/2 + min(m,n) + m(m−1)/2` formula.
    pub fn device_count(&self) -> DeviceCount {
        DeviceCount::from_mzis(
            (self.v_mesh.mzi_count() + self.attenuators.len() + self.u_mesh.mzi_count()) as u64,
        )
    }
}

/// The paper's closed-form MZI count for an `m×n` layer; exposed here so
/// that network-level area accounting does not need to build meshes.
pub fn layer_mzi_count(m: usize, n: usize) -> u64 {
    mzi_count(m as u64, n as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_cmatrix(m: usize, n: usize, seed: u64) -> CMatrix {
        let mut rng = StdRng::seed_from_u64(seed);
        CMatrix::from_fn(m, n, |_, _| {
            Complex64::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0))
        })
    }

    #[test]
    fn square_layer_round_trips() {
        let w = random_cmatrix(5, 5, 1);
        let layer = PhotonicLayer::from_matrix(&w, MeshStyle::Clements);
        assert!(layer.matrix().max_abs_diff(&w) < 1e-8);
    }

    #[test]
    fn tall_layer_round_trips() {
        let w = random_cmatrix(7, 3, 2);
        let layer = PhotonicLayer::from_matrix(&w, MeshStyle::Reck);
        assert!(layer.matrix().max_abs_diff(&w) < 1e-8);
    }

    #[test]
    fn wide_layer_round_trips() {
        let w = random_cmatrix(3, 7, 3);
        let layer = PhotonicLayer::from_matrix(&w, MeshStyle::Clements);
        assert!(layer.matrix().max_abs_diff(&w) < 1e-8);
    }

    #[test]
    fn attenuators_do_not_amplify() {
        let w = random_cmatrix(4, 4, 4).scale(Complex64::from_real(10.0));
        let layer = PhotonicLayer::from_matrix(&w, MeshStyle::Clements);
        for a in &layer.attenuators {
            assert!(a.coefficient <= 1.0 + 1e-12);
            assert!(a.coefficient >= 0.0);
        }
        assert!(layer.gain() > 1.0);
    }

    #[test]
    fn device_count_matches_formula() {
        let w = random_cmatrix(6, 4, 5);
        let layer = PhotonicLayer::from_matrix(&w, MeshStyle::Clements);
        assert_eq!(layer.device_count().mzis, mzi_count(6, 4));
    }

    #[test]
    fn forward_matches_matrix_multiplication() {
        let w = random_cmatrix(4, 6, 6);
        let layer = PhotonicLayer::from_matrix(&w, MeshStyle::Clements);
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..5 {
            let x: Vec<Complex64> = (0..6)
                .map(|_| Complex64::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)))
                .collect();
            let optical = layer.forward(&x);
            let exact = w.mul_vec(&x);
            for (a, b) in optical.iter().zip(&exact) {
                assert!((*a - *b).abs() < 1e-8);
            }
        }
    }

    #[test]
    fn reck_and_clements_agree() {
        let w = random_cmatrix(5, 5, 8);
        let a = PhotonicLayer::from_matrix(&w, MeshStyle::Clements).matrix();
        let b = PhotonicLayer::from_matrix(&w, MeshStyle::Reck).matrix();
        assert!(a.max_abs_diff(&b) < 1e-8);
    }

    #[test]
    fn rank_deficient_weight_round_trips() {
        let u = random_cmatrix(5, 1, 9);
        let v = random_cmatrix(1, 5, 10);
        let w = u.matmul(&v);
        let layer = PhotonicLayer::from_matrix(&w, MeshStyle::Clements);
        assert!(layer.matrix().max_abs_diff(&w) < 1e-8);
    }
}
